#include "sched/online_qe.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace qes {

void online_qe_into(Time now, std::span<const ReadyJob> jobs,
                    Speed max_speed, OnlineQeScratch& scratch,
                    OnlineQeResult& out) {
  QES_ASSERT_MSG(max_speed > 0.0, "Online-QE needs a positive max speed");
  out.schedule.clear();
  out.planned.clear();

  // Build the adjusted job set J'_t: the running job's release is rewound
  // by processed/max_speed, every other job is released "now".
  std::vector<Job>& adjusted = scratch.adjusted;
  adjusted.clear();
  adjusted.reserve(jobs.size());
  int running_count = 0;
  Time min_deadline = kNoDeadline;
  for (const ReadyJob& rj : jobs) {
    if (rj.deadline > now + kTimeEps && rj.demand - rj.processed > kTimeEps) {
      min_deadline = std::min(min_deadline, rj.deadline);
    }
  }
  for (const ReadyJob& rj : jobs) {
    if (rj.deadline <= now + kTimeEps) continue;          // expired
    if (rj.demand - rj.processed <= kTimeEps) continue;   // already done
    Job j;
    j.id = rj.id;
    j.deadline = rj.deadline;
    j.demand = rj.demand;
    if (rj.running) {
      ++running_count;
      QES_ASSERT_MSG(running_count == 1, "at most one running job");
      // FIFO execution of agreeable jobs means the job on the core
      // arrived first, hence has the earliest deadline; the release
      // rewind below relies on that to keep the adjusted set agreeable.
      QES_ASSERT_MSG(rj.deadline <= min_deadline + kTimeEps,
                     "running job must have the earliest deadline");
      j.release = now - rj.processed / max_speed;
    } else {
      QES_ASSERT_MSG(rj.processed <= kTimeEps,
                     "only the running job may have prior volume here; use "
                     "the baseline-aware Quality-OPT for the resume model");
      j.release = now;
    }
    adjusted.push_back(j);
  }
  if (adjusted.empty()) return;
  scratch.step1_set.assign(adjusted);
  const AgreeableJobSet& step1_set = scratch.step1_set;

  // Step 1: Quality-OPT at max speed fixes total volumes p_j.
  quality_opt_into(step1_set, max_speed, {}, scratch.qopt_scratch,
                   scratch.qopt);
  const QualityOptResult& q = scratch.qopt;

  // Step 2: rewrite demands to the *remaining* planned volume, re-release
  // everything at `now`, and let YDS pick the speeds from now onward.
  std::vector<Job>& step2 = scratch.step2;
  step2.clear();
  step2.reserve(step1_set.size());
  for (std::size_t k = 0; k < step1_set.size(); ++k) {
    Job j = step1_set[k];
    Work planned = q.volumes[k];
    if (j.release < now - kTimeEps) {
      // Running job: subtract the already-processed volume.
      planned -= (now - j.release) * max_speed;
    }
    if (planned <= kTimeEps) continue;  // fully served already
    j.release = now;
    j.demand = planned;
    out.planned[j.id] = planned;
    step2.push_back(j);
  }
  if (step2.empty()) return;
  scratch.step2_set.assign(step2);

  yds_schedule_capped_into(scratch.step2_set, max_speed, scratch.yds_scratch,
                           scratch.yds);
  out.schedule = scratch.yds.schedule;
  // Planned volumes follow the (possibly hair's-breadth rescaled)
  // schedule so execution accounting matches the plan exactly.
  for (auto& [id, planned] : out.planned) {
    planned = std::min(planned, out.schedule.volume_of(id));
  }
}

OnlineQeResult online_qe(Time now, std::span<const ReadyJob> jobs,
                         Speed max_speed) {
  OnlineQeScratch scratch;
  OnlineQeResult out;
  online_qe_into(now, jobs, max_speed, scratch, out);
  return out;
}

}  // namespace qes
