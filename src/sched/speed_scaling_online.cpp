#include "sched/speed_scaling_online.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "core/assert.hpp"
#include "sched/yds.hpp"

namespace qes {

std::vector<SpeedSegment> avr_speed_profile(const AgreeableJobSet& set) {
  std::vector<SpeedSegment> profile;
  if (set.empty()) return profile;

  std::set<Time> events;
  for (std::size_t k = 0; k < set.size(); ++k) {
    events.insert(set[k].release);
    events.insert(set[k].deadline);
  }
  std::vector<Time> ts(events.begin(), events.end());
  for (std::size_t e = 0; e + 1 < ts.size(); ++e) {
    const Time t0 = ts[e], t1 = ts[e + 1];
    Speed speed = 0.0;
    for (std::size_t k = 0; k < set.size(); ++k) {
      const Job& j = set[k];
      if (j.release <= t0 + kTimeEps && j.deadline >= t1 - kTimeEps) {
        speed += j.demand / j.window();
      }
    }
    if (speed > 0.0) profile.push_back({t0, t1, speed});
  }
  return profile;
}

Joules profile_energy(std::span<const SpeedSegment> profile,
                      const PowerModel& pm) {
  Joules e = 0.0;
  for (const SpeedSegment& s : profile) {
    e += pm.dynamic_energy(s.speed, s.t1 - s.t0);
  }
  return e;
}

Schedule avr_schedule(const AgreeableJobSet& set) {
  Schedule out;
  const auto profile = avr_speed_profile(set);
  std::vector<Work> remaining(set.size());
  for (std::size_t k = 0; k < set.size(); ++k) remaining[k] = set[k].demand;

  std::size_t next_job = 0;  // FIFO == EDF under agreeable deadlines
  for (const SpeedSegment& seg : profile) {
    Time t = seg.t0;
    while (t < seg.t1 - kTimeEps && next_job < set.size()) {
      // Skip completed jobs.
      while (next_job < set.size() && remaining[next_job] <= kTimeEps) {
        ++next_job;
      }
      if (next_job == set.size()) break;
      if (set[next_job].release > t + kTimeEps) {
        // Released sets only change at profile boundaries; if the FIFO
        // head is not yet released, the rest of this segment is idle.
        break;
      }
      const Time dt =
          std::min(seg.t1 - t, remaining[next_job] / seg.speed);
      out.push({t, t + dt, set[next_job].id, seg.speed});
      remaining[next_job] -= dt * seg.speed;
      t += dt;
      if (remaining[next_job] <= kTimeEps) {
        QES_ASSERT_MSG(approx_le(t, set[next_job].deadline, 1e-5),
                       "AVR+EDF must meet every deadline");
        ++next_job;
      }
    }
  }
  for (Work r : remaining) {
    QES_ASSERT_MSG(r <= 1e-5, "AVR must complete every job");
  }
  return out;
}

Schedule oa_schedule(const AgreeableJobSet& set) {
  Schedule out;
  if (set.empty()) return out;

  // Distinct release times are the replanning events.
  std::vector<Time> events;
  for (std::size_t k = 0; k < set.size(); ++k) {
    if (events.empty() || set[k].release > events.back() + kTimeEps) {
      events.push_back(set[k].release);
    }
  }

  std::vector<Work> remaining(set.size());
  std::map<JobId, std::size_t> index_of;
  for (std::size_t k = 0; k < set.size(); ++k) {
    remaining[k] = set[k].demand;
    index_of[set[k].id] = k;
  }

  for (std::size_t e = 0; e < events.size(); ++e) {
    const Time now = events[e];
    const Time until = e + 1 < events.size()
                           ? events[e + 1]
                           : std::numeric_limits<double>::infinity();
    // Alive jobs: released, unfinished.
    std::vector<Job> alive;
    for (std::size_t k = 0; k < set.size(); ++k) {
      if (set[k].release <= now + kTimeEps && remaining[k] > kTimeEps) {
        alive.push_back(Job{.id = set[k].id,
                            .release = now,
                            .deadline = set[k].deadline,
                            .demand = remaining[k]});
      }
    }
    if (alive.empty()) continue;
    const YdsResult plan = yds_schedule(AgreeableJobSet(std::move(alive)));
    // Execute the plan until the next arrival.
    for (const Segment& s : plan.schedule.segments()) {
      if (s.t0 >= until - kTimeEps) break;
      const Time t1 = std::min(s.t1, until);
      out.push({s.t0, t1, s.job, s.speed});
      // Charge the executed volume back to the master remaining array.
      const auto it = index_of.find(s.job);
      QES_ASSERT(it != index_of.end());
      remaining[it->second] -= (t1 - s.t0) * s.speed;
    }
  }
  for (std::size_t k = 0; k < set.size(); ++k) {
    QES_ASSERT_MSG(remaining[k] <= 1e-5, "OA must complete every job");
  }
  return out;
}

}  // namespace qes
