#include "report/table.hpp"

#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "core/assert.hpp"

namespace qes {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  QES_ASSERT_MSG(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  if (csv_mode()) {
    auto emit = [&os](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) os << ',';
        os << cells[i];
      }
      os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
    return;
  }

  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    width[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i ? "  " : "");
      os << cells[i];
      for (std::size_t p = cells[i].size(); p < width[i]; ++p) os << ' ';
    }
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    rule += std::string(width[i], '-');
    if (i + 1 < headers_.size()) rule += "  ";
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

bool csv_mode() {
  const char* v = std::getenv("QES_CSV");
  return v != nullptr && v[0] == '1';
}

}  // namespace qes
