// Minimal fixed-width table / series printer for the figure benches.
// Set QES_CSV=1 to emit CSV instead (for plotting scripts).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace qes {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("%.*f").
[[nodiscard]] std::string fmt(double value, int precision = 4);

/// Scientific formatting for energies ("%.*e").
[[nodiscard]] std::string fmt_sci(double value, int precision = 3);

/// True when QES_CSV=1 is set (Table prints CSV).
[[nodiscard]] bool csv_mode();

}  // namespace qes
