// Epoll ingress: the wire-level request plane in front of the runtime.
//
// Design (ISSUE 6 / ROADMAP item 1):
//
//   * N worker threads, each with its own epoll instance and its own
//     SO_REUSEPORT listener on the same port — the kernel shards accepts
//     across workers, so there is no shared accept lock.
//   * Bounded per-connection state: a FrameDecoder, a write buffer with
//     a hard cap (slow consumers are disconnected, never buffered
//     unboundedly), and a slab slot reused via a freelist.
//   * Batched admission: one epoll_wait sweep drains every readable
//     connection into a local SubmitFrame batch and hands the whole
//     batch to the sink in ONE call (one queue lock per sweep instead of
//     one per request). The sink accepts a prefix and the remainder is
//     shed — shed REPLYs go back on the wire immediately, so wire-level
//     shed accounting is exact.
//   * Completion routing: the runtime finalizes jobs on its trigger
//     thread and calls complete_batch(); completions land in a
//     per-worker inbox and an eventfd wakes the worker to write REPLYs.
//     Tokens carry a generation so a completion for a closed connection
//     is dropped, never mis-delivered.
//
// Protocol: the binary SUBMIT/ACK/REPLY framing (frame.hpp), plus an
// HTTP/1.1 adapter on the same port (first byte discriminates). HTTP
// clients POST /submit with an urlencoded-style body
// (demand=..&deadline=..&weight=..&partial=0|1&id=..) and get the REPLY
// as a JSON response when the job finalizes; GET /healthz answers
// immediately. HTTP responses are Connection: close.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"

namespace qes::obs {
class Registry;
}  // namespace qes::obs

namespace qes::net {

/// One admission candidate handed to the sink. `token` identifies the
/// (connection, entry) to reply to; it is opaque to the sink and must be
/// echoed back through Ingress::complete*.
struct IngressRequest {
  std::uint64_t token = 0;
  SubmitFrame submit;
};

/// A finalized (or shed) job's result on its way back to the wire.
struct Completion {
  std::uint64_t token = 0;
  ReplyStatus status = ReplyStatus::kShed;
  double quality = 0.0;
  double latency_ms = 0.0;
};

/// The runtime side of batched admission. submit_batch() must be
/// thread-safe (ingress workers call it concurrently) and must accept a
/// PREFIX: the return value k means requests [0, k) were admitted and
/// [k, n) are shed. Every admitted request eventually produces exactly
/// one Ingress::complete*() call with its token.
class IngressSink {
 public:
  virtual ~IngressSink() = default;
  virtual std::size_t submit_batch(const IngressRequest* reqs,
                                   std::size_t count) = 0;
};

struct IngressConfig {
  /// 0 binds an ephemeral port (read back via Ingress::port()).
  int port = 0;
  int workers = 2;
  /// Per-worker connection cap; accepts beyond it are closed.
  int max_connections = 4096;
  /// Max SUBMITs per sink call; a sweep yielding more submits in chunks.
  std::size_t max_batch = 512;
  /// recv() chunk size — one syscall's worth of frames (~64 KiB is
  /// ~1900 SUBMIT frames).
  std::size_t read_chunk = 64 * 1024;
  /// Bound on a buffered HTTP request head+body.
  std::size_t max_http_request = 8192;
  /// Write-buffer cap per connection; beyond it the peer is dropped.
  std::size_t max_write_buffer = 4 * 1024 * 1024;
  /// Optional instrument sink (counters under `metric_prefix`).
  obs::Registry* registry = nullptr;
  std::string metric_prefix = "qesd_ingress";
};

class Ingress {
 public:
  /// `sink` must outlive the ingress.
  Ingress(IngressConfig config, IngressSink* sink);
  ~Ingress();

  Ingress(const Ingress&) = delete;
  Ingress& operator=(const Ingress&) = delete;

  /// Binds all worker listeners and launches the worker threads. Throws
  /// std::runtime_error when the port cannot be bound.
  void start();

  /// Stops accepting, flushes pending write buffers (bounded), joins the
  /// workers, and closes every socket. Idempotent. Pending completions
  /// delivered before stop() are flushed; completions after stop() are
  /// dropped.
  void stop();

  /// Delivers results for previously admitted requests; safe from any
  /// thread. Unknown/stale tokens are ignored.
  void complete(const Completion& c);
  void complete_batch(const Completion* batch, std::size_t count);

  /// The bound port. Valid after start().
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Lifetime totals (relaxed; exact once the workers have stopped).
  [[nodiscard]] std::uint64_t connections_total() const;
  [[nodiscard]] std::uint64_t frames_in_total() const;
  [[nodiscard]] std::uint64_t shed_on_wire_total() const;
  [[nodiscard]] std::uint64_t replies_total() const;

 private:
  struct Worker;

  void worker_loop(Worker& w);
  void accept_ready(Worker& w);
  void handle_readable(Worker& w, std::uint32_t ci);
  /// Validates one SUBMIT and appends it to the sweep batch. Returns
  /// false on a protocol violation (caller closes the connection).
  bool on_submit(Worker& w, std::uint32_t ci, const SubmitFrame& f, bool http);
  /// Consumes buffered HTTP input; returns false when the connection
  /// must be closed immediately.
  bool handle_http_input(Worker& w, std::uint32_t ci);
  void flush_batch(Worker& w);
  void drain_inbox(Worker& w);
  void deliver(Worker& w, const Completion& c);
  void queue_out(Worker& w, std::uint32_t ci, const std::string& data);
  void flush_out(Worker& w, std::uint32_t ci);
  void flush_dirty(Worker& w);
  void close_conn(Worker& w, std::uint32_t ci);

  IngressConfig cfg_;
  IngressSink* sink_;
  int port_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  bool started_ = false;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
};

}  // namespace qes::net
