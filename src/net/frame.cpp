#include "net/frame.hpp"

#include <cstring>

namespace qes::net {

namespace {

// Explicit little-endian serialization: the wire format must not depend
// on host byte order or struct layout.

void put_u8(std::uint8_t v, std::string& out) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::uint32_t v, std::string& out) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_u64(std::uint64_t v, std::string& out) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_f64(double v, std::string& out) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits, out);
}

std::uint8_t get_u8(const char* p) { return static_cast<std::uint8_t>(*p); }

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

double get_f64(const char* p) {
  const std::uint64_t bits = get_u64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

constexpr std::size_t kSubmitBody = 8 + 8 + 8 + 8 + 1;  // 33
constexpr std::size_t kAckBody = 8 + 1;                 // 9
constexpr std::size_t kReplyBody = 8 + 1 + 8 + 8;       // 25

constexpr std::uint8_t kFlagPartialOk = 1u << 0;
constexpr std::uint8_t kFlagWantAck = 1u << 1;

}  // namespace

std::size_t encode_submit(const SubmitFrame& f, std::string& out) {
  const std::size_t before = out.size();
  put_u32(static_cast<std::uint32_t>(1 + kSubmitBody), out);
  put_u8(static_cast<std::uint8_t>(FrameType::kSubmit), out);
  put_u64(f.req_id, out);
  put_f64(f.demand, out);
  put_f64(f.deadline_ms, out);
  put_f64(f.weight, out);
  std::uint8_t flags = 0;
  if (f.partial_ok) flags |= kFlagPartialOk;
  if (f.want_ack) flags |= kFlagWantAck;
  put_u8(flags, out);
  return out.size() - before;
}

std::size_t encode_ack(const AckFrame& f, std::string& out) {
  const std::size_t before = out.size();
  put_u32(static_cast<std::uint32_t>(1 + kAckBody), out);
  put_u8(static_cast<std::uint8_t>(FrameType::kAck), out);
  put_u64(f.req_id, out);
  put_u8(f.accepted ? 1 : 0, out);
  return out.size() - before;
}

std::size_t encode_reply(const ReplyFrame& f, std::string& out) {
  const std::size_t before = out.size();
  put_u32(static_cast<std::uint32_t>(1 + kReplyBody), out);
  put_u8(static_cast<std::uint8_t>(FrameType::kReply), out);
  put_u64(f.req_id, out);
  put_u8(static_cast<std::uint8_t>(f.status), out);
  put_f64(f.quality, out);
  put_f64(f.latency_ms, out);
  return out.size() - before;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  if (errored_) return;
  // Compact before growing: consumed prefix bytes must not accumulate on
  // a long-lived connection.
  if (off_ > 0 && (off_ == buf_.size() || off_ >= 4096)) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  buf_.append(data, size);
}

FrameDecoder::Result FrameDecoder::fail(const std::string& why) {
  errored_ = true;
  error_ = why;
  return Result::kError;
}

FrameDecoder::Result FrameDecoder::next(Frame* out) {
  if (errored_) return Result::kError;
  const std::size_t avail = buf_.size() - off_;
  if (avail < 4) return Result::kNeedMore;
  const char* base = buf_.data() + off_;
  const std::uint32_t length = get_u32(base);
  if (length < 1 || length > kMaxFrameBytes) {
    return fail("bad frame length " + std::to_string(length));
  }
  if (avail < 4 + length) return Result::kNeedMore;
  const char* body = base + 5;  // past length + type
  const std::size_t body_len = length - 1;
  switch (static_cast<FrameType>(get_u8(base + 4))) {
    case FrameType::kSubmit: {
      if (body_len != kSubmitBody) return fail("bad SUBMIT body size");
      out->type = FrameType::kSubmit;
      out->submit.req_id = get_u64(body);
      out->submit.demand = get_f64(body + 8);
      out->submit.deadline_ms = get_f64(body + 16);
      out->submit.weight = get_f64(body + 24);
      const std::uint8_t flags = get_u8(body + 32);
      out->submit.partial_ok = (flags & kFlagPartialOk) != 0;
      out->submit.want_ack = (flags & kFlagWantAck) != 0;
      break;
    }
    case FrameType::kAck: {
      if (body_len != kAckBody) return fail("bad ACK body size");
      out->type = FrameType::kAck;
      out->ack.req_id = get_u64(body);
      out->ack.accepted = get_u8(body + 8) != 0;
      break;
    }
    case FrameType::kReply: {
      if (body_len != kReplyBody) return fail("bad REPLY body size");
      out->type = FrameType::kReply;
      out->reply.req_id = get_u64(body);
      const std::uint8_t status = get_u8(body + 8);
      if (status > 2) return fail("bad REPLY status");
      out->reply.status = static_cast<ReplyStatus>(status);
      out->reply.quality = get_f64(body + 9);
      out->reply.latency_ms = get_f64(body + 17);
      break;
    }
    default:
      return fail("unknown frame type");
  }
  off_ += 4 + length;
  return Result::kFrame;
}

}  // namespace qes::net
