#include "net/ingress.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "core/assert.hpp"
#include "net/socket_util.hpp"
#include "obs/registry.hpp"

namespace qes::net {

namespace {

// epoll user-data tags for the two non-connection fds.
constexpr std::uint64_t kTagListener = ~0ull;
constexpr std::uint64_t kTagEventFd = ~0ull - 1;

// Token layout: high bits = worker index, low 40 bits = entry index + 1
// (so a valid token is never 0).
constexpr int kTokenEntryBits = 40;
constexpr std::uint64_t kTokenEntryMask = (1ull << kTokenEntryBits) - 1;

std::uint64_t make_token(int worker, std::uint32_t entry) {
  return (static_cast<std::uint64_t>(worker) << kTokenEntryBits) |
         (static_cast<std::uint64_t>(entry) + 1);
}

// Untrusted wire input: a malformed-but-well-framed SUBMIT must never
// reach RuntimeCore's invariants (QES_ASSERT aborts). Bounds are far
// beyond anything the workload model produces.
bool submit_sane(const SubmitFrame& f) {
  return std::isfinite(f.demand) && f.demand > 0.0 && f.demand <= 1e9 &&
         std::isfinite(f.weight) && f.weight > 0.0 && f.weight <= 1e6 &&
         std::isfinite(f.deadline_ms) && f.deadline_ms >= 0.0 &&
         f.deadline_ms <= 3.6e6;
}

std::string http_response(const std::string& status, const std::string& type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 " + status + "\r\n";
  out += "Content-Type: " + type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

const char* status_name(ReplyStatus s) {
  switch (s) {
    case ReplyStatus::kShed:
      return "shed";
    case ReplyStatus::kSatisfied:
      return "satisfied";
    case ReplyStatus::kPartial:
      return "partial";
  }
  return "unknown";
}

std::string reply_json(const ReplyFrame& r) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"id\": %llu, \"status\": \"%s\", \"quality\": %.6f, "
                "\"latency_ms\": %.3f}\n",
                static_cast<unsigned long long>(r.req_id),
                status_name(r.status), r.quality, r.latency_ms);
  return buf;
}

}  // namespace

struct Ingress::Worker {
  // One live client connection's bounded state (slab slot, reused).
  struct Conn {
    int fd = -1;
    std::uint32_t gen = 0;  // bumped on close; stale tokens miss
    bool detected = false;  // protocol sniffed from the first byte
    bool http = false;
    bool want_close = false;  // close once `out` drains
    bool epollout = false;    // EPOLLOUT armed
    bool dirty = false;       // queued output this sweep
    int inflight = 0;
    FrameDecoder decoder;
    std::string http_in;
    std::string out;
    std::size_t out_off = 0;
  };

  // One in-flight admitted (or about-to-be-admitted) request.
  struct Entry {
    bool used = false;
    bool http = false;
    std::uint32_t conn = 0;
    std::uint32_t conn_gen = 0;
    std::uint64_t req_id = 0;
  };

  int index = 0;
  int epoll_fd = -1;
  int event_fd = -1;
  Listener listener;
  std::vector<Conn> conns;
  std::vector<std::uint32_t> conn_free;
  std::vector<Entry> entries;
  std::vector<std::uint32_t> entry_free;
  std::vector<std::uint32_t> dirty;
  std::vector<char> read_buf;  // one recv chunk, reused across sweeps
  std::vector<IngressRequest> batch;
  std::vector<Completion> inbox_local;
  std::mutex inbox_mu;
  std::vector<Completion> inbox;

  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> shed_wire{0};
  std::atomic<std::uint64_t> replies{0};

  // Cached instruments (nullptr when no registry is attached); creation
  // takes the registry mutex, recording is atomic.
  obs::Counter* c_connections = nullptr;
  obs::Counter* c_frames = nullptr;
  obs::Counter* c_shed = nullptr;
  obs::Counter* c_replies = nullptr;
  obs::Counter* c_batches = nullptr;
  obs::Histogram* h_batch = nullptr;
};

Ingress::Ingress(IngressConfig config, IngressSink* sink)
    : cfg_(std::move(config)), sink_(sink) {
  QES_ASSERT(sink_ != nullptr);
  QES_ASSERT(cfg_.workers >= 1 && cfg_.workers <= 64);
  QES_ASSERT(cfg_.max_connections >= 1 && cfg_.max_batch >= 1);
  QES_ASSERT(cfg_.read_chunk >= 64 && cfg_.max_write_buffer >= 4096);
}

Ingress::~Ingress() { stop(); }

void Ingress::start() {
  QES_ASSERT_MSG(!started_, "start() may be called once");
  started_ = true;
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    // The first worker may bind an ephemeral port; the rest shard the
    // discovered port via SO_REUSEPORT.
    ListenOptions lo;
    lo.reuseport = true;
    lo.nonblocking = true;
    w->listener = listen_loopback(i == 0 ? cfg_.port : port_, lo);
    if (i == 0) port_ = w->listener.port;
    w->epoll_fd = ::epoll_create1(0);
    w->event_fd = ::eventfd(0, EFD_NONBLOCK);
    if (w->epoll_fd < 0 || w->event_fd < 0) {
      throw std::runtime_error("ingress: epoll/eventfd creation failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagListener;
    ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->listener.fd, &ev);
    ev.data.u64 = kTagEventFd;
    ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->event_fd, &ev);
    if (cfg_.registry != nullptr) {
      const std::string& p = cfg_.metric_prefix;
      w->c_connections = &cfg_.registry->counter(
          p + "_connections_total", "client connections accepted");
      w->c_frames = &cfg_.registry->counter(
          p + "_submit_frames_total", "SUBMIT frames decoded off the wire");
      w->c_shed = &cfg_.registry->counter(
          p + "_shed_replies_total", "shed REPLY frames written to clients");
      w->c_replies = &cfg_.registry->counter(
          p + "_replies_total", "REPLY frames written to clients");
      w->c_batches = &cfg_.registry->counter(
          p + "_admission_batches_total", "batched sink submissions");
      w->h_batch = &cfg_.registry->histogram(
          p + "_admission_batch_size", "SUBMIT frames per sink batch", {},
          obs::Histogram(1.0, 2.0, 12));
    }
    workers_.push_back(std::move(w));
  }
  running_.store(true, std::memory_order_release);
  threads_.reserve(workers_.size());
  for (auto& w : workers_) {
    Worker* wp = w.get();
    threads_.emplace_back([this, wp] { worker_loop(*wp); });
  }
}

void Ingress::stop() {
  if (!started_ || !running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    const std::uint64_t one = 1;
    (void)!::write(w->event_fd, &one, sizeof(one));
  }
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  // Sockets are closed after the join so no worker (and no complete()
  // caller — forbidden concurrently with stop()) can touch a reused fd.
  for (auto& w : workers_) {
    for (Worker::Conn& c : w->conns) {
      if (c.fd >= 0) ::close(c.fd);
      c.fd = -1;
    }
    if (w->listener.fd >= 0) ::close(w->listener.fd);
    if (w->event_fd >= 0) ::close(w->event_fd);
    if (w->epoll_fd >= 0) ::close(w->epoll_fd);
    w->listener.fd = w->event_fd = w->epoll_fd = -1;
  }
  running_.store(false, std::memory_order_release);
}

void Ingress::complete(const Completion& c) { complete_batch(&c, 1); }

void Ingress::complete_batch(const Completion* batch, std::size_t count) {
  if (!running_.load(std::memory_order_acquire)) return;
  // One scan per worker: each inbox mutex and eventfd is touched at most
  // once per call (workers are few, batches can be large).
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    Worker& w = *workers_[wi];
    bool any = false;
    {
      std::lock_guard<std::mutex> lock(w.inbox_mu);
      for (std::size_t i = 0; i < count; ++i) {
        if ((batch[i].token >> kTokenEntryBits) == wi) {
          w.inbox.push_back(batch[i]);
          any = true;
        }
      }
    }
    if (any) {
      const std::uint64_t one = 1;
      (void)!::write(w.event_fd, &one, sizeof(one));
    }
  }
}

void Ingress::worker_loop(Worker& w) {
  epoll_event evs[64];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(w.epoll_fd, evs, 64, 100);
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = evs[i].data.u64;
      if (tag == kTagListener) {
        accept_ready(w);
      } else if (tag == kTagEventFd) {
        std::uint64_t junk = 0;
        (void)!::read(w.event_fd, &junk, sizeof(junk));
      } else {
        const std::uint32_t ci = static_cast<std::uint32_t>(tag);
        if (ci >= w.conns.size() || w.conns[ci].fd < 0) continue;
        if ((evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
          handle_readable(w, ci);
        }
        if ((evs[i].events & EPOLLOUT) != 0 && w.conns[ci].fd >= 0) {
          flush_out(w, ci);
        }
      }
    }
    // One sink call per sweep: this is the admission batching that
    // amortizes the queue lock across a syscall's worth of frames.
    flush_batch(w);
    drain_inbox(w);
    flush_dirty(w);
  }
  // Shutdown: flush whatever the runtime already completed, then give
  // clients a bounded window to take delivery of buffered replies.
  flush_batch(w);
  drain_inbox(w);
  flush_dirty(w);
  for (int spin = 0; spin < 20; ++spin) {
    bool pending = false;
    for (std::uint32_t ci = 0; ci < w.conns.size(); ++ci) {
      Worker::Conn& c = w.conns[ci];
      if (c.fd >= 0 && c.out_off < c.out.size()) {
        flush_out(w, ci);
        if (c.fd >= 0 && c.out_off < c.out.size()) pending = true;
      }
    }
    if (!pending) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void Ingress::accept_ready(Worker& w) {
  for (;;) {
    const int fd = ::accept4(w.listener.fd, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN: accept queue drained
    std::uint32_t ci;
    if (!w.conn_free.empty()) {
      ci = w.conn_free.back();
      w.conn_free.pop_back();
    } else if (w.conns.size() <
               static_cast<std::size_t>(cfg_.max_connections)) {
      ci = static_cast<std::uint32_t>(w.conns.size());
      w.conns.emplace_back();
    } else {
      ::close(fd);  // at capacity: shed the connection itself
      continue;
    }
    Worker::Conn& c = w.conns[ci];
    const std::uint32_t gen = c.gen;
    c = Worker::Conn{};
    c.fd = fd;
    c.gen = gen;
    set_tcp_nodelay(fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = ci;
    ::epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    w.connections.fetch_add(1, std::memory_order_relaxed);
    if (w.c_connections != nullptr) w.c_connections->inc();
  }
}

void Ingress::close_conn(Worker& w, std::uint32_t ci) {
  Worker::Conn& c = w.conns[ci];
  if (c.fd < 0) return;
  ::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  c.fd = -1;
  // Bump the generation: completions for this connection's in-flight
  // entries are dropped (their Entry is freed on arrival), and a future
  // tenant of this slot can never receive them.
  ++c.gen;
  c.out.clear();
  c.out_off = 0;
  c.http_in.clear();
  c.dirty = false;
  w.conn_free.push_back(ci);
}

void Ingress::handle_readable(Worker& w, std::uint32_t ci) {
  Worker::Conn& c = w.conns[ci];
  std::vector<char>& buf = w.read_buf;
  if (buf.size() != cfg_.read_chunk) buf.resize(cfg_.read_chunk);
  for (;;) {
    const ssize_t r = ::recv(c.fd, buf.data(), buf.size(), 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_conn(w, ci);
      return;
    }
    if (r == 0) {
      // Peer closed. Buffered output (if any) cannot be delivered on a
      // fully closed socket in this design; drop the connection.
      close_conn(w, ci);
      return;
    }
    const std::size_t got = static_cast<std::size_t>(r);
    if (!c.detected) {
      // First byte discriminates: every HTTP method starts with an
      // ASCII letter, while valid frame lengths (34/10/26) do not.
      const char b0 = buf[0];
      c.http = (b0 >= 'A' && b0 <= 'Z') || (b0 >= 'a' && b0 <= 'z');
      c.detected = true;
    }
    if (c.http) {
      c.http_in.append(buf.data(), got);
      if (c.http_in.size() > cfg_.max_http_request) {
        queue_out(w, ci,
                  http_response("413 Payload Too Large", "text/plain",
                                "request too large\n"));
        c.want_close = true;
        return;
      }
      if (!handle_http_input(w, ci)) {
        // Response already queued (or none owed); close after flush.
        return;
      }
    } else {
      c.decoder.feed(buf.data(), got);
      Frame f;
      for (;;) {
        const FrameDecoder::Result res = c.decoder.next(&f);
        if (res == FrameDecoder::Result::kNeedMore) break;
        if (res == FrameDecoder::Result::kError ||
            f.type != FrameType::kSubmit ||
            !on_submit(w, ci, f.submit, /*http=*/false)) {
          close_conn(w, ci);
          return;
        }
        // on_submit can flush a full batch, whose shed replies may
        // overflow this connection's write buffer and close it; stop
        // decoding instead of admitting jobs for a dead client.
        if (c.fd < 0) return;
      }
    }
    if (got < buf.size()) return;  // short read: kernel buffer drained
  }
}

bool Ingress::on_submit(Worker& w, std::uint32_t ci, const SubmitFrame& f,
                        bool http) {
  if (!submit_sane(f)) return false;
  Worker::Conn& c = w.conns[ci];
  if (c.fd < 0) return false;  // closed mid-sweep: nothing to admit
  std::uint32_t ei;
  if (!w.entry_free.empty()) {
    ei = w.entry_free.back();
    w.entry_free.pop_back();
  } else {
    ei = static_cast<std::uint32_t>(w.entries.size());
    w.entries.emplace_back();
  }
  Worker::Entry& e = w.entries[ei];
  e.used = true;
  e.http = http;
  e.conn = ci;
  e.conn_gen = c.gen;
  e.req_id = f.req_id;
  ++c.inflight;
  IngressRequest req;
  req.token = make_token(w.index, ei);
  req.submit = f;
  w.batch.push_back(req);
  w.frames_in.fetch_add(1, std::memory_order_relaxed);
  if (w.batch.size() >= cfg_.max_batch) flush_batch(w);
  return true;
}

bool Ingress::handle_http_input(Worker& w, std::uint32_t ci) {
  Worker::Conn& c = w.conns[ci];
  const std::size_t head_end = c.http_in.find("\r\n\r\n");
  if (head_end == std::string::npos) return true;  // need more
  const std::string head = c.http_in.substr(0, head_end);

  // Content-Length (case-insensitive scan, one header per line).
  std::size_t body_len = 0;
  for (std::size_t pos = 0; pos < head.size();) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    if (line.size() > 15) {
      std::string key = line.substr(0, 15);
      for (char& ch : key) ch = static_cast<char>(std::tolower(ch));
      if (key == "content-length:") {
        body_len = static_cast<std::size_t>(
            std::strtoul(line.c_str() + 15, nullptr, 10));
      }
    }
    pos = eol + 2;
  }
  if (body_len > cfg_.max_http_request) {
    queue_out(w, ci,
              http_response("413 Payload Too Large", "text/plain",
                            "body too large\n"));
    c.want_close = true;
    return false;
  }
  if (c.http_in.size() < head_end + 4 + body_len) return true;  // need body
  const std::string body = c.http_in.substr(head_end + 4, body_len);

  // Request line: METHOD SP PATH SP VERSION (exporter conventions).
  const std::size_t eol = head.find("\r\n");
  const std::string line =
      eol == std::string::npos ? head : head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    queue_out(w, ci,
              http_response("400 Bad Request", "text/plain",
                            "malformed request line\n"));
    c.want_close = true;
    return false;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method == "GET" && path == "/healthz") {
    queue_out(w, ci,
              http_response("200 OK", "application/json",
                            "{\"status\": \"ok\", \"plane\": \"ingress\"}\n"));
    c.want_close = true;
    return false;
  }
  if (method != "POST") {
    queue_out(w, ci,
              http_response("405 Method Not Allowed", "text/plain",
                            "POST /submit or GET /healthz\n"));
    c.want_close = true;
    return false;
  }
  if (path != "/submit") {
    queue_out(w, ci,
              http_response("404 Not Found", "text/plain",
                            "no handler for " + path + "; try /submit\n"));
    c.want_close = true;
    return false;
  }

  // Body: demand=..&deadline=..&weight=..&partial=0|1&id=..
  SubmitFrame f;
  f.partial_ok = true;
  for (std::size_t pos = 0; pos < body.size();) {
    std::size_t amp = body.find('&', pos);
    if (amp == std::string::npos) amp = body.size();
    const std::string kv = body.substr(pos, amp - pos);
    const std::size_t eq = kv.find('=');
    if (eq != std::string::npos) {
      const std::string key = kv.substr(0, eq);
      const std::string val = kv.substr(eq + 1);
      if (key == "demand") f.demand = std::atof(val.c_str());
      else if (key == "deadline") f.deadline_ms = std::atof(val.c_str());
      else if (key == "weight") f.weight = std::atof(val.c_str());
      else if (key == "partial") f.partial_ok = std::atoi(val.c_str()) != 0;
      else if (key == "id") f.req_id = std::strtoull(val.c_str(), nullptr, 10);
    }
    pos = amp + 1;
  }
  if (!submit_sane(f)) {
    queue_out(w, ci,
              http_response("400 Bad Request", "text/plain",
                            "demand must be a positive number\n"));
    c.want_close = true;
    return false;
  }
  // Deferred response: the 200/503 is written when the job finalizes (or
  // sheds at the admission batch). One request per connection.
  (void)on_submit(w, ci, f, /*http=*/true);
  c.http_in.clear();
  return false;
}

void Ingress::flush_batch(Worker& w) {
  if (w.batch.empty()) return;
  const std::size_t n = w.batch.size();
  const std::size_t k = sink_->submit_batch(w.batch.data(), n);
  QES_ASSERT(k <= n);
  if (w.c_batches != nullptr) w.c_batches->inc();
  if (w.h_batch != nullptr) w.h_batch->record(static_cast<double>(n));
  std::string scratch;
  for (std::size_t i = 0; i < n; ++i) {
    const IngressRequest& req = w.batch[i];
    const std::uint32_t ei =
        static_cast<std::uint32_t>((req.token & kTokenEntryMask) - 1);
    Worker::Entry& e = w.entries[ei];
    Worker::Conn& c = w.conns[e.conn];
    const bool conn_live = c.fd >= 0 && c.gen == e.conn_gen;
    if (i < k) {
      // Admitted: ACK now when asked; the REPLY arrives via complete().
      if (conn_live && !e.http && req.submit.want_ack) {
        scratch.clear();
        encode_ack(AckFrame{req.submit.req_id, true}, scratch);
        queue_out(w, e.conn, scratch);
      }
      continue;
    }
    // Shed: the wire-level rejection goes out immediately, so the
    // client-observed shed count reconciles exactly with the sink's.
    w.shed_wire.fetch_add(1, std::memory_order_relaxed);
    if (w.c_shed != nullptr) w.c_shed->inc();
    if (conn_live) {
      if (e.http) {
        queue_out(w, e.conn,
                  http_response("503 Service Unavailable", "application/json",
                                reply_json(ReplyFrame{req.submit.req_id,
                                                      ReplyStatus::kShed, 0.0,
                                                      0.0})));
        c.want_close = true;
      } else {
        scratch.clear();
        if (req.submit.want_ack) {
          encode_ack(AckFrame{req.submit.req_id, false}, scratch);
        }
        encode_reply(
            ReplyFrame{req.submit.req_id, ReplyStatus::kShed, 0.0, 0.0},
            scratch);
        queue_out(w, e.conn, scratch);
      }
      w.replies.fetch_add(1, std::memory_order_relaxed);
      if (w.c_replies != nullptr) w.c_replies->inc();
      --c.inflight;
    }
    e.used = false;
    w.entry_free.push_back(ei);
  }
  w.batch.clear();
}

void Ingress::drain_inbox(Worker& w) {
  w.inbox_local.clear();
  {
    std::lock_guard<std::mutex> lock(w.inbox_mu);
    w.inbox_local.swap(w.inbox);
  }
  for (const Completion& c : w.inbox_local) deliver(w, c);
}

void Ingress::deliver(Worker& w, const Completion& comp) {
  const std::uint64_t low = comp.token & kTokenEntryMask;
  if (low == 0) return;
  const std::uint32_t ei = static_cast<std::uint32_t>(low - 1);
  if (ei >= w.entries.size() || !w.entries[ei].used) return;
  Worker::Entry& e = w.entries[ei];
  Worker::Conn& c = w.conns[e.conn];
  if (c.fd >= 0 && c.gen == e.conn_gen) {
    const ReplyFrame r{e.req_id, comp.status, comp.quality, comp.latency_ms};
    if (e.http) {
      queue_out(w, e.conn,
                http_response("200 OK", "application/json", reply_json(r)));
      c.want_close = true;
    } else {
      std::string scratch;
      encode_reply(r, scratch);
      queue_out(w, e.conn, scratch);
    }
    w.replies.fetch_add(1, std::memory_order_relaxed);
    if (w.c_replies != nullptr) w.c_replies->inc();
    --c.inflight;
  }
  e.used = false;
  w.entry_free.push_back(ei);
}

void Ingress::queue_out(Worker& w, std::uint32_t ci, const std::string& data) {
  Worker::Conn& c = w.conns[ci];
  if (c.fd < 0) return;
  if (c.out.size() - c.out_off + data.size() > cfg_.max_write_buffer) {
    // A consumer this slow is broken; buffering further would let one
    // client hold unbounded memory.
    close_conn(w, ci);
    return;
  }
  // Compact the consumed prefix before growing.
  if (c.out_off > 0 && (c.out_off == c.out.size() || c.out_off >= 65536)) {
    c.out.erase(0, c.out_off);
    c.out_off = 0;
  }
  c.out.append(data);
  if (!c.dirty) {
    c.dirty = true;
    w.dirty.push_back(ci);
  }
}

void Ingress::flush_dirty(Worker& w) {
  for (const std::uint32_t ci : w.dirty) {
    Worker::Conn& c = w.conns[ci];
    c.dirty = false;
    if (c.fd >= 0) flush_out(w, ci);
  }
  w.dirty.clear();
}

void Ingress::flush_out(Worker& w, std::uint32_t ci) {
  Worker::Conn& c = w.conns[ci];
  while (c.out_off < c.out.size()) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c.epollout) {
        c.epollout = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.u64 = ci;
        ::epoll_ctl(w.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
      }
      return;
    }
    close_conn(w, ci);
    return;
  }
  c.out.clear();
  c.out_off = 0;
  if (c.epollout) {
    c.epollout = false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = ci;
    ::epoll_ctl(w.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
  }
  if (c.want_close) close_conn(w, ci);
}

std::uint64_t Ingress::connections_total() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) n += w->connections.load();
  return n;
}
std::uint64_t Ingress::frames_in_total() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) n += w->frames_in.load();
  return n;
}
std::uint64_t Ingress::shed_on_wire_total() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) n += w->shed_wire.load();
  return n;
}
std::uint64_t Ingress::replies_total() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) n += w->replies.load();
  return n;
}

}  // namespace qes::net
