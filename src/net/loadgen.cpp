#include "net/loadgen.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "core/assert.hpp"
#include "core/prng.hpp"
#include "net/frame.hpp"
#include "net/socket_util.hpp"
#include "workload/demand.hpp"

namespace qes::net {

namespace {

using WallClock = std::chrono::steady_clock;

double ms_since(WallClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - t0)
      .count();
}

// Draws the open-loop arrival schedule. For MMPP the phase switches are
// handled by the memoryless property: a gap that would cross the next
// switch is discarded and re-drawn from the new phase's rate starting at
// the switch instant.
class ArrivalSchedule {
 public:
  ArrivalSchedule(const LoadgenConfig& cfg, Xoshiro256& rng)
      : cfg_(cfg), rng_(rng) {
    if (cfg_.arrival == ArrivalKind::kMmpp) {
      QES_ASSERT(cfg_.mmpp_burst >= 1.0 && cfg_.mmpp_switch_hz > 0.0);
      rate_low_ = 2.0 * cfg_.rate / (1.0 + cfg_.mmpp_burst);
      rate_high_ = cfg_.mmpp_burst * rate_low_;
      next_switch_ms_ = rng_.exponential(cfg_.mmpp_switch_hz / 1000.0);
    }
  }

  /// The next arrival instant (ms) after `t_ms`.
  double next(double t_ms) {
    switch (cfg_.arrival) {
      case ArrivalKind::kUniform:
        return t_ms + 1000.0 / cfg_.rate;
      case ArrivalKind::kPoisson:
        return t_ms + rng_.exponential(cfg_.rate / 1000.0);
      case ArrivalKind::kMmpp:
        break;
    }
    for (;;) {
      const double rate = high_ ? rate_high_ : rate_low_;
      const double gap = rng_.exponential(rate / 1000.0);
      if (t_ms + gap < next_switch_ms_) return t_ms + gap;
      t_ms = next_switch_ms_;
      high_ = !high_;
      next_switch_ms_ =
          t_ms + rng_.exponential(cfg_.mmpp_switch_hz / 1000.0);
    }
  }

 private:
  const LoadgenConfig& cfg_;
  Xoshiro256& rng_;
  double rate_low_ = 0.0;
  double rate_high_ = 0.0;
  double next_switch_ms_ = 0.0;
  bool high_ = false;
};

struct GenConn {
  int fd = -1;
  FrameDecoder decoder;
  std::string out;
  std::size_t out_off = 0;
};

// Flushes as much pending output as the socket accepts right now.
void pump_out(GenConn& c) {
  while (c.out_off < c.out.size()) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    throw std::runtime_error("loadgen: connection lost mid-send");
  }
  if (c.out_off == c.out.size()) {
    c.out.clear();
    c.out_off = 0;
  } else if (c.out_off >= 65536) {
    c.out.erase(0, c.out_off);
    c.out_off = 0;
  }
}

}  // namespace

std::string LoadgenReport::to_json() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"submitted\": %llu, \"acked\": %llu, \"replies\": %llu, "
      "\"satisfied\": %llu, \"partial\": %llu, \"shed\": %llu, "
      "\"lost\": %llu, \"quality_sum\": %.6f, \"offered_rate\": %.1f, "
      "\"reply_rate\": %.1f, \"wall_seconds\": %.3f, "
      "\"max_send_lag_ms\": %.3f, \"latency_ms\": {\"count\": %llu, "
      "\"mean\": %.4f, \"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f, "
      "\"max\": %.4f}}",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(acked),
      static_cast<unsigned long long>(replies),
      static_cast<unsigned long long>(satisfied),
      static_cast<unsigned long long>(partial),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(lost), quality_sum, offered_rate,
      reply_rate, wall_seconds, max_send_lag_ms,
      static_cast<unsigned long long>(latency.count),
      latency.count > 0 ? latency.sum / static_cast<double>(latency.count)
                        : 0.0,
      latency.quantile(0.50), latency.quantile(0.95), latency.quantile(0.99),
      latency.max);
  return buf;
}

LoadgenReport run_loadgen(const LoadgenConfig& cfg) {
  QES_ASSERT(cfg.rate > 0.0 && cfg.duration_s > 0.0 && cfg.connections >= 1);
  QES_ASSERT(cfg.partial_fraction >= 0.0 && cfg.partial_fraction <= 1.0);

  Xoshiro256 rng(cfg.seed);
  ArrivalSchedule schedule(cfg, rng);
  const BoundedPareto demand(cfg.pareto_alpha, cfg.demand_min, cfg.demand_max);

  std::vector<GenConn> conns(static_cast<std::size_t>(cfg.connections));
  std::vector<pollfd> pfds(conns.size());
  for (GenConn& c : conns) {
    c.fd = connect_loopback(cfg.port);
    set_tcp_nodelay(c.fd);
    (void)set_nonblocking(c.fd);
  }

  // 10 us .. ~1.7 min in 40 buckets (growth 1.5): sub-ms loopback RTTs
  // and multi-second stalls both land in finite buckets.
  obs::Histogram hist(0.01, 1.5, 40);
  LoadgenReport rep;

  // Scheduled send instant per dense req_id — the open-loop anchor every
  // latency is measured from.
  std::vector<double> sched_ms;
  sched_ms.reserve(static_cast<std::size_t>(
      std::min(cfg.rate * cfg.duration_s * 1.25 + 1024.0, 64e6)));

  const double duration_ms = cfg.duration_s * 1000.0;
  double next_arrival = schedule.next(0.0);
  bool sending = next_arrival < duration_ms;
  std::size_t rr = 0;  // round-robin connection cursor
  char buf[65536];

  const WallClock::time_point t0 = WallClock::now();
  const double drain_deadline_ms = duration_ms + cfg.drain_timeout_s * 1000.0;
  std::string scratch;

  for (;;) {
    const double now_ms = ms_since(t0);

    // Catch the schedule up to now: after any stall this bursts out all
    // overdue sends instead of silently skipping them (the open-loop
    // discipline that defeats coordinated omission).
    while (sending && next_arrival <= now_ms) {
      SubmitFrame f;
      f.req_id = rep.submitted;
      f.demand = demand.sample(rng);
      f.deadline_ms = cfg.deadline_ms;
      f.weight = 1.0;
      f.partial_ok = rng.bernoulli(cfg.partial_fraction);
      f.want_ack = cfg.want_ack;
      scratch.clear();
      encode_submit(f, scratch);
      GenConn& c = conns[rr];
      rr = (rr + 1) % conns.size();
      c.out.append(scratch);
      sched_ms.push_back(next_arrival);
      ++rep.submitted;
      rep.max_send_lag_ms =
          std::max(rep.max_send_lag_ms, now_ms - next_arrival);
      next_arrival = schedule.next(next_arrival);
      if (next_arrival >= duration_ms) sending = false;
    }

    for (std::size_t i = 0; i < conns.size(); ++i) {
      // Opportunistic send before polling: freshly queued frames usually
      // fit the socket buffer without waiting a poll round.
      if (conns[i].out_off < conns[i].out.size()) pump_out(conns[i]);
      pfds[i].fd = conns[i].fd;
      pfds[i].events = POLLIN;
      if (conns[i].out_off < conns[i].out.size()) pfds[i].events |= POLLOUT;
      pfds[i].revents = 0;
    }

    const bool all_sent = !sending;
    if (all_sent && rep.replies + rep.lost >= rep.submitted) break;
    if (all_sent && now_ms >= drain_deadline_ms) {
      rep.lost = rep.submitted - rep.replies;
      break;
    }

    int timeout_ms = 10;
    if (sending) {
      const double until_next = next_arrival - ms_since(t0);
      timeout_ms = std::clamp(static_cast<int>(until_next), 0, 10);
    }
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      throw std::runtime_error("loadgen: poll() failed");
    }
    if (ready <= 0) continue;

    const double recv_ms = ms_since(t0);
    for (std::size_t i = 0; i < conns.size(); ++i) {
      GenConn& c = conns[i];
      if ((pfds[i].revents & POLLOUT) != 0) pump_out(c);
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      for (;;) {
        const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n <= 0) {
          throw std::runtime_error("loadgen: server closed the connection");
        }
        c.decoder.feed(buf, static_cast<std::size_t>(n));
        Frame fr;
        for (;;) {
          const FrameDecoder::Result res = c.decoder.next(&fr);
          if (res == FrameDecoder::Result::kNeedMore) break;
          if (res == FrameDecoder::Result::kError) {
            throw std::runtime_error("loadgen: protocol error: " +
                                     c.decoder.error());
          }
          if (fr.type == FrameType::kAck) {
            ++rep.acked;
            continue;
          }
          if (fr.type != FrameType::kReply) continue;
          ++rep.replies;
          const std::uint64_t id = fr.reply.req_id;
          if (id < sched_ms.size()) {
            hist.record(std::max(0.0, recv_ms - sched_ms[id]));
          }
          switch (fr.reply.status) {
            case ReplyStatus::kShed:
              ++rep.shed;
              break;
            case ReplyStatus::kSatisfied:
              ++rep.satisfied;
              rep.quality_sum += fr.reply.quality;
              break;
            case ReplyStatus::kPartial:
              ++rep.partial;
              rep.quality_sum += fr.reply.quality;
              break;
          }
        }
        if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      }
    }
  }

  rep.wall_seconds = ms_since(t0) / 1000.0;
  for (GenConn& c : conns) {
    if (c.fd >= 0) ::close(c.fd);
  }
  if (rep.wall_seconds > 0.0) {
    // Offered rate is measured over the send window; replies keep
    // arriving through the drain, so their rate uses the full wall time.
    rep.offered_rate = static_cast<double>(rep.submitted) /
                       std::min(rep.wall_seconds, cfg.duration_s);
    rep.reply_rate = static_cast<double>(rep.replies) / rep.wall_seconds;
  }
  rep.latency = hist.snapshot();
  return rep;
}

}  // namespace qes::net
