#include "net/socket_util.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "core/assert.hpp"

namespace qes::net {

namespace {

sockaddr_in loopback_addr(int port) {
  QES_ASSERT_MSG(port >= 0 && port <= 65535, "port must be in [0, 65535]");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  return addr;
}

}  // namespace

Listener listen_loopback(int port, const ListenOptions& opt) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("listen_loopback: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (opt.reuseport) {
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  }
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, opt.backlog) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("listen_loopback: cannot listen on port " +
                             std::to_string(port) + ": " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  if (opt.nonblocking) (void)set_nonblocking(fd);
  return Listener{fd, static_cast<int>(ntohs(addr.sin_port))};
}

bool set_nonblocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

int connect_loopback(int port, int timeout_s) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("connect_loopback: socket() failed");
  timeval tv{};
  tv.tv_sec = timeout_s;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr = loopback_addr(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw std::runtime_error("connect_loopback: cannot connect to port " +
                             std::to_string(port));
  }
  return fd;
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    // MSG_NOSIGNAL: a peer hanging up mid-write must not SIGPIPE the
    // process.
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_all(int fd, const std::string& data) {
  return send_all(fd, data.data(), data.size());
}

std::string recv_until_eof(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

}  // namespace qes::net
