// The qes wire protocol: small length-prefixed binary frames.
//
// Layout (all integers and floats little-endian):
//
//   u32 length   -- bytes that FOLLOW the length field (type + body)
//   u8  type     -- FrameType
//   ... body
//
// SUBMIT (client -> server), body 33 bytes:
//   u64 req_id       client-chosen correlation id (echoed in ACK/REPLY)
//   f64 demand       service demand (work units, > 0)
//   f64 deadline_ms  relative deadline; 0 = server default
//   f64 weight       job weight (> 0)
//   u8  flags        bit0 = partial_ok, bit1 = want_ack
//
// ACK (server -> client, only when want_ack), body 9 bytes:
//   u64 req_id
//   u8  accepted     1 = admitted, 0 = shed (a REPLY still follows)
//
// REPLY (server -> client, exactly one per SUBMIT), body 25 bytes:
//   u64 req_id
//   u8  status       ReplyStatus
//   f64 quality      achieved quality (0 when shed)
//   f64 latency_ms   virtual ms from admission to finalization (0 when shed)
//
// The first byte a connection sends discriminates the protocol: frame
// lengths are tiny (< kMaxFrameBytes), so byte 0 of a binary stream is
// always < 0x41, while every HTTP method starts with an ASCII letter.
// That lets one ingress port speak both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace qes::net {

enum class FrameType : std::uint8_t {
  kSubmit = 1,
  kAck = 2,
  kReply = 3,
};

enum class ReplyStatus : std::uint8_t {
  kShed = 0,       // rejected at admission (queue full or draining)
  kSatisfied = 1,  // full demand served by the deadline
  kPartial = 2,    // finalized with partial (possibly zero) quality
};

/// Upper bound on `length`; anything larger is a protocol error. Keeps a
/// malicious length prefix from ballooning connection buffers.
inline constexpr std::uint32_t kMaxFrameBytes = 512;

struct SubmitFrame {
  std::uint64_t req_id = 0;
  double demand = 0.0;
  double deadline_ms = 0.0;  // 0 = server default
  double weight = 1.0;
  bool partial_ok = true;
  bool want_ack = false;
};

struct AckFrame {
  std::uint64_t req_id = 0;
  bool accepted = false;
};

struct ReplyFrame {
  std::uint64_t req_id = 0;
  ReplyStatus status = ReplyStatus::kShed;
  double quality = 0.0;
  double latency_ms = 0.0;
};

/// A decoded frame; exactly one of the bodies is meaningful per `type`.
struct Frame {
  FrameType type = FrameType::kSubmit;
  SubmitFrame submit;
  AckFrame ack;
  ReplyFrame reply;
};

// ---- encoding (append to `out`, returns bytes appended) ----

std::size_t encode_submit(const SubmitFrame& f, std::string& out);
std::size_t encode_ack(const AckFrame& f, std::string& out);
std::size_t encode_reply(const ReplyFrame& f, std::string& out);

/// Incremental decoder over a byte stream. feed() appends raw bytes;
/// next() pops one complete frame at a time. A malformed stream (oversize
/// length, unknown type, wrong body size) puts the decoder into a sticky
/// error state — the connection must be dropped.
class FrameDecoder {
 public:
  enum class Result { kFrame, kNeedMore, kError };

  void feed(const char* data, std::size_t size);

  /// Decodes the next complete frame into `*out`.
  Result next(Frame* out);

  [[nodiscard]] bool errored() const { return errored_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed (0 on a clean stream boundary).
  [[nodiscard]] std::size_t pending() const { return buf_.size() - off_; }

 private:
  Result fail(const std::string& why);

  std::string buf_;
  std::size_t off_ = 0;
  bool errored_ = false;
  std::string error_;
};

}  // namespace qes::net
