// Open-loop load generator for the wire-level request plane.
//
// Closed-loop generators (send, wait for the reply, send again) suffer
// coordinated omission: when the server stalls, the generator silently
// stops issuing the requests that would have observed the stall, so the
// recorded latency distribution is biased toward the good times. This
// generator is open-loop: every arrival is scheduled on the process-wide
// monotonic clock before the run starts ticking (t_next = t_prev + gap,
// never "now + gap"), sends catch up in bursts after any stall, and each
// request's latency is measured from its SCHEDULED send time — a reply
// to a late-sent request is charged the full queueing delay the schedule
// implies. max_send_lag_ms reports how far the sender itself fell behind
// (a generator health check: if it is large, the generator, not the
// server, was the bottleneck).
//
// Arrivals: Poisson (exponential gaps), Uniform (evenly spaced), or a
// 2-state MMPP — a Markov-modulated Poisson process that alternates
// between a low-rate and a high-rate phase (burst factor B: the high
// rate is B times the low rate, mean rate preserved), the standard small
// model for bursty interactive traffic.
//
// The generator multiplexes N persistent binary-protocol connections
// from one thread (poll + nonblocking sockets) and records latency into
// the repo's log-bucketed obs::Histogram. run_loadgen() drives the whole
// lifecycle: connect, send/receive until the duration elapses, then wait
// (bounded) for the outstanding replies.
#pragma once

#include <cstdint>
#include <string>

#include "core/time.hpp"
#include "obs/histogram.hpp"

namespace qes::net {

enum class ArrivalKind { kPoisson, kUniform, kMmpp };

struct LoadgenConfig {
  int port = 0;
  /// Mean aggregate arrival rate (req/s) across all connections.
  double rate = 1000.0;
  double duration_s = 1.0;
  int connections = 4;
  ArrivalKind arrival = ArrivalKind::kPoisson;
  /// MMPP burst factor B >= 1: high-phase rate = B * low-phase rate.
  double mmpp_burst = 4.0;
  /// MMPP phase-switch rate (switches per second, symmetric).
  double mmpp_switch_hz = 1.0;
  /// Per-request relative deadline sent on the wire; 0 = server default.
  double deadline_ms = 0.0;
  /// Fraction of requests with partial_ok set.
  double partial_fraction = 1.0;
  /// Bounded-Pareto service demand (matches workload defaults).
  double pareto_alpha = 3.0;
  double demand_min = 130.0;
  double demand_max = 1000.0;
  /// Request ACK frames (costs a reply byte stream; off by default).
  bool want_ack = false;
  std::uint64_t seed = 1;
  /// After the send schedule is exhausted, wait at most this long for
  /// the outstanding replies.
  double drain_timeout_s = 10.0;
};

struct LoadgenReport {
  std::uint64_t submitted = 0;
  std::uint64_t acked = 0;
  std::uint64_t replies = 0;
  std::uint64_t satisfied = 0;
  std::uint64_t partial = 0;
  std::uint64_t shed = 0;
  /// Requests with no reply when the drain timeout expired (0 on a
  /// healthy run: the server owes exactly one REPLY per SUBMIT).
  std::uint64_t lost = 0;
  double quality_sum = 0.0;
  double offered_rate = 0.0;   // submitted / wall duration
  double reply_rate = 0.0;     // replies / wall duration
  double wall_seconds = 0.0;
  /// Worst sender lag behind the open-loop schedule (generator health).
  double max_send_lag_ms = 0.0;
  obs::HistogramSnapshot latency;  // ms, from scheduled send to reply

  [[nodiscard]] std::string to_json() const;
};

/// Runs one open-loop session against 127.0.0.1:port. Throws
/// std::runtime_error when the server cannot be reached.
[[nodiscard]] LoadgenReport run_loadgen(const LoadgenConfig& config);

}  // namespace qes::net
