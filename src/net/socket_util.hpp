// Shared loopback-socket plumbing for the wire plane.
//
// Both the obs HTTP exporter and the net ingress own plain BSD sockets
// (dependency-free by design). The bind/listen/ephemeral-port-discovery,
// nonblocking, and "write everything" boilerplate is identical, so it
// lives here exactly once. Everything binds 127.0.0.1: the request plane
// is a loopback/behind-a-proxy surface, not an internet-facing one.
#pragma once

#include <cstddef>
#include <string>

namespace qes::net {

/// A bound, listening TCP socket on 127.0.0.1.
struct Listener {
  int fd = -1;
  int port = -1;
};

struct ListenOptions {
  int backlog = 128;
  /// SO_REUSEPORT: lets several listeners shard accepts of one port
  /// (the ingress binds one listener per worker).
  bool reuseport = false;
  bool nonblocking = false;
};

/// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned; the bound
/// port is read back into Listener::port). Throws std::runtime_error on
/// failure.
[[nodiscard]] Listener listen_loopback(int port, const ListenOptions& opt = {});

/// O_NONBLOCK on/off. Returns false on fcntl failure.
bool set_nonblocking(int fd, bool enable = true);

/// TCP_NODELAY — the request plane writes whole frames and must not wait
/// out Nagle. Best effort.
void set_tcp_nodelay(int fd);

/// Blocking connect to 127.0.0.1:`port` with SO_RCVTIMEO/SO_SNDTIMEO set
/// to `timeout_s`. Throws std::runtime_error when the connect fails.
[[nodiscard]] int connect_loopback(int port, int timeout_s = 2);

/// Writes the whole buffer (MSG_NOSIGNAL, retrying short writes).
/// Returns false when the peer goes away mid-write.
bool send_all(int fd, const char* data, std::size_t size);
bool send_all(int fd, const std::string& data);

/// Reads until EOF or error and returns everything received. Used by the
/// one-shot HTTP client helper.
[[nodiscard]] std::string recv_until_eof(int fd);

}  // namespace qes::net
