#include "policy/des_planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "core/assert.hpp"
#include "sched/quality_opt.hpp"
#include "sched/weighted_quality.hpp"
#include "sched/yds.hpp"

namespace qes::policy {

DesPlanner::DesPlanner(obs::Registry* registry, const std::string& plane)
    : profiler_(registry, kReplanPhaseMetric, kReplanPhaseHelp,
                plane.empty()
                    ? std::vector<std::pair<std::string, std::string>>{}
                    : std::vector<std::pair<std::string, std::string>>{
                          {"plane", plane}}) {}

void DesPlanner::canonicalize(WorldView& view) {
  for (CoreView& core : view.cores) {
    std::sort(core.jobs.begin(), core.jobs.end(),
              [](const ViewJob& a, const ViewJob& b) {
                if (a.deadline != b.deadline) return a.deadline < b.deadline;
                return a.id < b.id;
              });
  }
}

void DesPlanner::budget_free_core_into(const CoreView& core, Time now,
                                       const PowerModel& pm, BudgetFree& out) {
  // Budget-free per-core YDS (DES step 2): remaining demands, all
  // released now. Yields the plan, its power request at `now`, and its
  // top speed.
  out.plan.clear();
  out.power_at_now = 0.0;
  out.max_speed = 0.0;
  std::vector<Job>& jobs = jobs_tmp_;
  jobs.clear();
  jobs.reserve(core.jobs.size());
  for (const ViewJob& vj : core.jobs) {
    const Work remaining = vj.demand - vj.processed;
    if (remaining <= kTimeEps) continue;
    jobs.push_back(Job{.id = vj.id,
                       .release = now,
                       .deadline = vj.deadline,
                       .demand = remaining});
  }
  if (jobs.empty()) return;
  set_tmp_.assign(jobs);
  yds_schedule_into(set_tmp_, yds_scratch_, yds_out_);
  out.max_speed = yds_out_.critical_speed;
  out.power_at_now = pm.dynamic_power(yds_out_.schedule.speed_at(now));
  out.plan = yds_out_.schedule;
}

BudgetFree DesPlanner::budget_free(const WorldView& view, std::size_t core) {
  QES_ASSERT(view.power_model != nullptr && core < view.cores.size());
  BudgetFree out;
  budget_free_core_into(view.cores[core], view.now, *view.power_model, out);
  return out;
}

Watts DesPlanner::total_power_request(const WorldView& view) {
  QES_ASSERT(view.power_model != nullptr);
  Watts total = 0.0;
  BudgetFree f;
  for (const CoreView& core : view.cores) {
    budget_free_core_into(core, view.now, *view.power_model, f);
    total += f.power_at_now;
  }
  return total;
}

// Fixed-speed planning used by the No-DVFS and S-DVFS variants: run
// Quality-OPT (with the running job's release rewound exactly as in
// Online-QE step 1) and lay the granted volumes out FIFO from `now`.
void DesPlanner::fixed_speed_plan_into(const CoreView& core, Time now,
                                       Speed speed, bool baseline_mode,
                                       CorePlan& out) {
  out.plan.clear();
  out.planned.clear();
  if (speed <= kTimeEps || core.jobs.empty()) return;

  std::vector<Job>& adjusted = jobs_tmp_;
  adjusted.clear();
  adjusted.reserve(core.jobs.size());
  baselines_.clear();
  bool first = true;
  for (const ViewJob& vj : core.jobs) {
    QES_ASSERT(vj.deadline > now + kTimeEps);
    Job j{.id = vj.id,
          .release = now,
          .deadline = vj.deadline,
          .demand = vj.demand};
    if (!baseline_mode && first && vj.processed > kTimeEps) {
      j.release = now - vj.processed / speed;
    }
    first = false;
    baselines_.push_back(vj.processed);
    adjusted.push_back(j);
  }
  set_tmp_.assign(adjusted);
  const AgreeableJobSet& set = set_tmp_;
  quality_opt_into(set, speed, baseline_mode ? std::span<const Work>(baselines_)
                                             : std::span<const Work>{},
                   qopt_scratch_, qopt_out_);
  const QualityOptResult& q = qopt_out_;

  Time t = now;
  for (std::size_t k = 0; k < set.size(); ++k) {
    Work rem = q.volumes[k];
    if (set[k].release < now - kTimeEps) {
      rem -= (now - set[k].release) * speed;  // running job's prior volume
    }
    if (rem <= kTimeEps) continue;
    const Time finish = t + rem / speed;
    QES_ASSERT_MSG(approx_le(finish, set[k].deadline, kPlanSlackEps),
                   "fixed-speed plan must meet deadlines");
    out.plan.push({t, finish, set[k].id, speed});
    out.planned[set[k].id] = rem;
    t = finish;
  }
}

// Re-time granted volumes flat-out at the core's max speed (the eager
// ablation): jobs only finish earlier than in the stretched plan, so
// deadlines keep holding.
void DesPlanner::eager_timetable_into(const CoreView& core, Time now,
                                      const FlatVolumeMap& planned,
                                      Speed max_speed, Schedule& out) {
  out.clear();
  Time t = now;
  for (const ViewJob& vj : core.jobs) {
    const auto it = planned.find(vj.id);
    if (it == planned.end() || it->second <= kTimeEps) continue;
    const Time finish = t + it->second / max_speed;
    QES_ASSERT_MSG(approx_le(finish, vj.deadline, kPlanSlackEps),
                   "eager timetable must meet deadlines");
    out.push({t, finish, vj.id, max_speed});
    t = finish;
  }
}

// Budget-bounded planning for one core (DES step 4). In the paper's
// execution model this is Online-QE; in the resume ablation the
// baseline-aware Quality-OPT + YDS pair replaces it so previously served
// non-running jobs keep their credit.
void DesPlanner::budget_bounded_plan_into(const CoreView& core, Time now,
                                          Speed max_speed, bool eager,
                                          bool baseline_mode, CorePlan& out) {
  out.plan.clear();
  out.planned.clear();
  if (max_speed <= kTimeEps) return;

  // The paper's Online-QE rewinds the running job's release, which
  // requires the earliest-deadline job to be the one with prior volume.
  // Rebalancing and the resume ablation can violate that, so they use
  // the baseline-aware Quality-OPT + YDS pair instead.
  if (!baseline_mode) {
    ready_.clear();
    bool first = true;
    for (const ViewJob& vj : core.jobs) {
      QES_ASSERT(vj.deadline > now + kTimeEps);
      ready_.push_back(ReadyJob{.id = vj.id,
                                .deadline = vj.deadline,
                                .demand = vj.demand,
                                .processed = vj.processed,
                                .running = first && vj.processed > kTimeEps});
      first = false;
    }
    online_qe_into(now, ready_, max_speed, oqe_scratch_, oqe_out_);
    out.plan = oqe_out_.schedule;
    out.planned = oqe_out_.planned;
    if (eager) {
      eager_timetable_into(core, now, out.planned, max_speed, out.plan);
    }
    return;
  }

  // Baseline mode: every job may carry prior volume as a baseline.
  std::vector<Job>& jobs = jobs_tmp_;
  jobs.clear();
  jobs.reserve(core.jobs.size());
  baselines_.clear();
  for (const ViewJob& vj : core.jobs) {
    jobs.push_back(Job{.id = vj.id,
                       .release = now,
                       .deadline = vj.deadline,
                       .demand = vj.demand});
    baselines_.push_back(vj.processed);
  }
  if (jobs.empty()) return;
  set_tmp_.assign(jobs);
  const AgreeableJobSet& set = set_tmp_;
  quality_opt_into(set, max_speed, baselines_, qopt_scratch_, qopt_out_);
  const QualityOptResult& q = qopt_out_;

  std::vector<Job>& step2 = jobs_tmp2_;
  step2.clear();
  for (std::size_t k = 0; k < set.size(); ++k) {
    if (q.volumes[k] <= kTimeEps) continue;
    Job j = set[k];
    j.demand = q.volumes[k];
    out.planned[j.id] = q.volumes[k];
    step2.push_back(j);
  }
  if (step2.empty()) return;
  set_tmp2_.assign(step2);
  yds_schedule_capped_into(set_tmp2_, max_speed, yds_scratch_, yds_out_);
  out.plan = yds_out_.schedule;
  for (auto& [id, planned] : out.planned) {
    planned = std::min(planned, out.plan.volume_of(id));
  }
}

// Weighted budget-bounded planning (extension): allocate volumes by
// weighted quality (baseline-aware, so mid-queue prior volume is fine),
// then YDS the granted volumes.
void DesPlanner::weighted_budget_bounded_plan_into(
    const CoreView& core, Time now, const QualityFunction& quality,
    Speed max_speed, bool eager, CorePlan& out) {
  out.plan.clear();
  out.planned.clear();
  if (max_speed <= kTimeEps || core.jobs.empty()) return;
  std::vector<Job>& jobs = jobs_tmp_;
  jobs.clear();
  jobs.reserve(core.jobs.size());
  for (const ViewJob& vj : core.jobs) {
    jobs.push_back(Job{.id = vj.id,
                       .release = now,
                       .deadline = vj.deadline,
                       .demand = vj.demand,
                       .weight = vj.weight});
  }
  set_tmp_.assign(jobs);
  const AgreeableJobSet& set = set_tmp_;
  // AgreeableJobSet sorts by (release, deadline, id); with every release
  // equal to `now` that is exactly the canonical view order, so weights
  // and baselines align by index.
  weights_.clear();
  baselines_.clear();
  for (std::size_t k = 0; k < set.size(); ++k) {
    QES_ASSERT(set[k].id == core.jobs[k].id);
    weights_.push_back(core.jobs[k].weight);
    baselines_.push_back(core.jobs[k].processed);
  }
  const auto q = weighted_quality_opt_schedule(set, max_speed, weights_,
                                               quality, baselines_);

  std::vector<Job>& step2 = jobs_tmp2_;
  step2.clear();
  for (std::size_t k = 0; k < set.size(); ++k) {
    if (q.volumes[k] <= kTimeEps) continue;
    Job j = set[k];
    j.demand = q.volumes[k];
    out.planned[j.id] = q.volumes[k];
    step2.push_back(j);
  }
  if (step2.empty()) return;
  if (eager) {
    eager_timetable_into(core, now, out.planned, max_speed, out.plan);
    return;
  }
  set_tmp2_.assign(step2);
  yds_schedule_capped_into(set_tmp2_, max_speed, yds_scratch_, yds_out_);
  out.plan = yds_out_.schedule;
  for (auto& [id, planned] : out.planned) {
    planned = std::min(planned, out.plan.volume_of(id));
  }
}

// Re-time a plan onto discrete speed levels: each segment's volume runs
// at the snapped-up level (never above `cap`, itself a level), packed
// back-to-back from `now`. Jobs only finish earlier, so deadlines hold.
void DesPlanner::quantize_plan_into(const Schedule& plan, Time now,
                                    const DiscreteSpeedSet& levels, Speed cap,
                                    Schedule& out) {
  out.clear();
  Time t = now;
  for (const Segment& s : plan.segments()) {
    const auto snapped = levels.snap_up(s.speed);
    QES_ASSERT_MSG(snapped && *snapped <= cap + kTimeEps,
                   "quantized speed must stay within the rectified level");
    const Time dur = s.volume() / *snapped;
    out.push({t, t + dur, s.job, *snapped});
    t += dur;
  }
}

template <typename MakePlan>
void DesPlanner::install_with_rigid_check(CoreView& core,
                                          const PlanOptions& opt,
                                          MakePlan make_plan,
                                          CoreOutcome& out) {
  for (;;) {
    const CorePlan& p = make_plan();
    JobId to_discard = 0;
    std::size_t discard_at = 0;
    for (std::size_t k = 0; k < core.jobs.size(); ++k) {
      const ViewJob& vj = core.jobs[k];
      if (vj.partial_ok) continue;
      const auto it = p.planned.find(vj.id);
      const Work planned = it == p.planned.end() ? 0.0 : it->second;
      if (vj.processed + planned + kRigidVolumeEps < vj.demand) {
        to_discard = vj.id;
        discard_at = k;
        break;
      }
    }
    if (to_discard == 0) {
      // A partially executed job granted no further volume has been
      // dropped from the ready set by Online-QE (its fair share is
      // already met); under the paper's execution model it is discarded
      // now and never resumed.
      if (!opt.resume_passed_jobs) {
        for (const ViewJob& vj : core.jobs) {
          if (vj.processed > kTimeEps && !p.planned.count(vj.id)) {
            out.passed_over.push_back(vj.id);
          }
        }
        std::erase_if(core.jobs, [&](const ViewJob& vj) {
          return vj.processed > kTimeEps && !p.planned.count(vj.id);
        });
      }
      out.plan = p.plan;
      return;
    }
    out.rigid_discards.push_back(to_discard);
    core.jobs.erase(core.jobs.begin() +
                    static_cast<std::ptrdiff_t>(discard_at));
  }
}

void DesPlanner::plan_no_dvfs(WorldView& view, const PlanOptions& opt,
                              PlanOutcome& out) {
  QES_ASSERT(view.power_model != nullptr && !view.cores.empty());
  canonicalize(view);
  const PowerModel& pm = *view.power_model;
  const std::size_t m = view.cores.size();
  out.reset(m);
  const Speed share =
      pm.speed_for_power(view.power_budget / static_cast<double>(m));
  for (std::size_t i = 0; i < m; ++i) {
    const Speed s0 = std::min(share, view.cores[i].speed_cap);
    install_with_rigid_check(
        view.cores[i], opt,
        [&, i]() -> const CorePlan& {
          fixed_speed_plan_into(view.cores[i], view.now, s0,
                                opt.baseline_mode, plan_tmp_);
          return plan_tmp_;
        },
        out.cores[i]);
    out.cores[i].idle_power = pm.dynamic_power(s0);
  }
}

void DesPlanner::plan_s_dvfs(WorldView& view, const PlanOptions& opt,
                             PlanOutcome& out) {
  QES_ASSERT(view.power_model != nullptr && !view.cores.empty());
  canonicalize(view);
  const PowerModel& pm = *view.power_model;
  const std::size_t m = view.cores.size();
  out.reset(m);
  // Step 2 with the chip-wide constraint: every core is granted the
  // hungriest core's request, clamped to the equal share H/m.
  Watts max_request = 0.0;
  {
    BudgetFree f;
    for (std::size_t i = 0; i < m; ++i) {
      budget_free_core_into(view.cores[i], view.now, pm, f);
      max_request = std::max(max_request, f.power_at_now);
    }
  }
  const Watts common =
      std::min(max_request, view.power_budget / static_cast<double>(m));
  for (std::size_t i = 0; i < m; ++i) {
    const Speed sc =
        std::min(pm.speed_for_power(common), view.cores[i].speed_cap);
    install_with_rigid_check(
        view.cores[i], opt,
        [&, i]() -> const CorePlan& {
          fixed_speed_plan_into(view.cores[i], view.now, sc,
                                opt.baseline_mode, plan_tmp_);
          return plan_tmp_;
        },
        out.cores[i]);
    // DVFS-capable cores draw no dynamic power while idle (clock
    // gating): only executing cores are charged at the common speed.
    out.cores[i].idle_power = 0.0;
  }
}

void DesPlanner::plan_c_dvfs(WorldView& view, const PlanOptions& opt,
                             PlanOutcome& out) {
  QES_ASSERT(view.power_model != nullptr && !view.cores.empty());
  canonicalize(view);
  const PowerModel& pm = *view.power_model;
  const std::size_t m = view.cores.size();
  out.reset(m);

  // Step 2: budget-free YDS per core.
  Watts total_request = 0.0;
  Speed top_speed = 0.0;
  {
    auto timer = profiler_.phase("yds");
    if (free_plans_.size() != m) free_plans_.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      budget_free_core_into(view.cores[i], view.now, pm, free_plans_[i]);
      total_request += free_plans_[i].power_at_now;
      top_speed = std::max(top_speed, free_plans_[i].max_speed);
    }
  }

  const bool continuous = opt.speed_levels == nullptr;
  Speed min_core_cap = std::numeric_limits<double>::infinity();
  for (const CoreView& core : view.cores) {
    min_core_cap = std::min(min_core_cap, core.speed_cap);
  }
  if (continuous && !opt.static_power && !opt.eager_execution &&
      total_request <= view.power_budget + kTimeEps &&
      top_speed <= min_core_cap + kTimeEps) {
    // The optimistic schedules fit the budget: everyone completes.
    auto timer = profiler_.phase("online_qe");
    for (std::size_t i = 0; i < m; ++i) {
      out.cores[i].plan = free_plans_[i].plan;
    }
    return;
  }

  // Step 3: power distribution. (Scope via optional so the WF timer
  // closes before step 4's timer opens, without re-nesting the code.)
  std::optional<obs::PhaseProfiler::Scope> timer;
  timer.emplace(profiler_.phase_histogram("wf"));
  if (opt.static_power) {
    budgets_.assign(m, view.power_budget / static_cast<double>(m));
  } else {
    requests_.clear();
    for (const BudgetFree& f : free_plans_) {
      requests_.push_back(f.power_at_now);
    }
    waterfill_power_into(requests_, view.power_budget, wfp_scratch_, budgets_);
    if (opt.eager_execution) {
      // Requests reflect the energy-stretched plans; eager execution
      // wants to finish early, so hand the WF surplus to the active
      // cores in equal shares (the total stays within H).
      Watts assigned = 0.0;
      std::size_t active = 0;
      for (std::size_t i = 0; i < m; ++i) {
        assigned += budgets_[i];
        if (!view.cores[i].jobs.empty()) ++active;
      }
      if (active > 0 && view.power_budget > assigned + kTimeEps) {
        const Watts bonus =
            (view.power_budget - assigned) / static_cast<double>(active);
        for (std::size_t i = 0; i < m; ++i) {
          if (!view.cores[i].jobs.empty()) budgets_[i] += bonus;
        }
      }
    }
  }

  // Step 4: budget-bounded per-core planning.
  timer.emplace(profiler_.phase_histogram("online_qe"));
  if (continuous) {
    for (std::size_t i = 0; i < m; ++i) {
      const Speed cap =
          std::min(pm.speed_for_power(budgets_[i]), view.cores[i].speed_cap);
      install_with_rigid_check(
          view.cores[i], opt,
          [&, i]() -> const CorePlan& {
            if (opt.weighted) {
              weighted_budget_bounded_plan_into(view.cores[i], view.now,
                                                *view.quality, cap,
                                                opt.eager_execution,
                                                plan_tmp_);
            } else {
              budget_bounded_plan_into(view.cores[i], view.now, cap,
                                       opt.eager_execution, opt.baseline_mode,
                                       plan_tmp_);
            }
            return plan_tmp_;
          },
          out.cores[i]);
    }
    return;
  }

  // Discrete scaling (§V-F): rectify the WF speeds onto the level set,
  // plan under the rectified cap, then re-time segments onto levels.
  const DiscreteSpeedSet& levels = *opt.speed_levels;
  speeds_.clear();
  for (std::size_t i = 0; i < m; ++i) {
    speeds_.push_back(
        std::min(pm.speed_for_power(budgets_[i]),
                 std::min(view.cores[i].speed_cap, levels.max_speed())));
  }
  const auto rectified =
      rectify_speeds_discrete(speeds_, view.power_budget, levels, pm);
  for (std::size_t i = 0; i < m; ++i) {
    const auto cap = rectified[i];
    if (!cap) {
      // out.cores[i] stays the empty plan: the core idles this round.
      continue;
    }
    install_with_rigid_check(
        view.cores[i], opt,
        [&, i, cap]() -> const CorePlan& {
          budget_bounded_plan_into(view.cores[i], view.now, *cap,
                                   opt.eager_execution, opt.baseline_mode,
                                   plan_tmp_);
          quantize_plan_into(plan_tmp_.plan, view.now, levels, *cap,
                             sched_tmp_);
          plan_tmp_.plan = sched_tmp_;
          return plan_tmp_;
        },
        out.cores[i]);
  }
}

}  // namespace qes::policy
