// C-RR: Cumulative Round-Robin job distribution (paper §IV-B).
//
// Ready jobs are dealt to cores round-robin, but the dealing CURSOR
// persists across invocations: each distribution cycle starts from the
// core after the one where the previous cycle stopped. Compared with
// restarting at core 0 every time, this keeps long-run per-core job
// counts balanced.
#pragma once

#include <cstddef>
#include <vector>

#include "core/assert.hpp"

namespace qes {

class CumulativeRoundRobin {
 public:
  explicit CumulativeRoundRobin(std::size_t cores) : cores_(cores) {
    QES_ASSERT(cores > 0);
  }

  /// Returns the target core for each of `count` jobs, advancing the
  /// persistent cursor.
  [[nodiscard]] std::vector<std::size_t> distribute(std::size_t count) {
    std::vector<std::size_t> targets;
    distribute_into(count, targets);
    return targets;
  }

  /// Scratch-reusing variant of distribute (replan hot path).
  void distribute_into(std::size_t count, std::vector<std::size_t>& targets) {
    targets.clear();
    targets.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      targets.push_back(cursor_);
      cursor_ = (cursor_ + 1) % cores_;
    }
  }

  /// Core the next job would be assigned to.
  [[nodiscard]] std::size_t cursor() const { return cursor_; }
  [[nodiscard]] std::size_t cores() const { return cores_; }

  void reset() { cursor_ = 0; }

 private:
  std::size_t cores_;
  std::size_t cursor_ = 0;
};

/// Non-cumulative round-robin (restarts at core 0 each invocation);
/// exists for the C-RR-vs-RR ablation bench.
class PlainRoundRobin {
 public:
  explicit PlainRoundRobin(std::size_t cores) : cores_(cores) {
    QES_ASSERT(cores > 0);
  }

  [[nodiscard]] std::vector<std::size_t> distribute(std::size_t count) const {
    std::vector<std::size_t> targets;
    distribute_into(count, targets);
    return targets;
  }

  void distribute_into(std::size_t count,
                       std::vector<std::size_t>& targets) const {
    targets.clear();
    targets.reserve(count);
    for (std::size_t k = 0; k < count; ++k) targets.push_back(k % cores_);
  }

 private:
  std::size_t cores_;
};

/// Smooth weighted round robin (the nginx algorithm): deals items to
/// targets in proportion to their weights, interleaved as evenly as
/// possible. Used for capacity-aware job distribution on heterogeneous
/// (big.LITTLE) servers, where equal dealing overloads the slow cores.
class SmoothWeightedRoundRobin {
 public:
  explicit SmoothWeightedRoundRobin(std::vector<double> weights)
      : weights_(std::move(weights)), current_(weights_.size(), 0.0) {
    QES_ASSERT(!weights_.empty());
    for (double w : weights_) {
      QES_ASSERT(w > 0.0);
      total_ += w;
    }
  }

  /// Target for the next item.
  [[nodiscard]] std::size_t next() {
    std::size_t best = 0;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      current_[i] += weights_[i];
      if (current_[i] > current_[best]) best = i;
    }
    current_[best] -= total_;
    return best;
  }

  [[nodiscard]] std::vector<std::size_t> distribute(std::size_t count) {
    std::vector<std::size_t> targets;
    distribute_into(count, targets);
    return targets;
  }

  void distribute_into(std::size_t count, std::vector<std::size_t>& targets) {
    targets.clear();
    targets.reserve(count);
    for (std::size_t k = 0; k < count; ++k) targets.push_back(next());
  }

 private:
  std::vector<double> weights_;
  std::vector<double> current_;
  double total_ = 0.0;
};

}  // namespace qes
