// WorldView: the engine-agnostic snapshot the DES planner kernel plans
// against (see docs/ARCHITECTURE.md, "The WorldView contract").
//
// Every execution plane — the discrete-event simulator, the qesd live
// runtime, and (through the runtime) the cluster lockstep — reduces its
// private state to this one structure before planning, so the paper's
// C-RR + WF + Online-QE pipeline exists exactly once (DesPlanner) and
// all planes provably share every arithmetic operation.
//
// Contract:
//  - `now` is the invocation time; every job's deadline is strictly in
//    the future (deadline > now + kTimeEps) — expired jobs must be
//    finalized before planning.
//  - Per core, `jobs` holds the live assigned jobs. The kernel
//    canonicalizes each core's list to (deadline, id) order before
//    planning, which for agreeable workloads is exactly arrival order —
//    so planner output is invariant under any permutation of the input.
//  - The job currently executing on a core (if any) is recognized
//    positionally after canonicalization: the head job with
//    processed > kTimeEps. Under the paper's non-migratory FIFO model
//    only the head can carry prior volume.
//  - The view is a *scratch* structure: reset() + push_back keep vector
//    capacity across replans, so steady-state refills allocate nothing
//    (bench/replan_kernel asserts this).
//  - Planning mutates the view: the §V-D rigid-discard loop erases jobs
//    it discards. Consumers re-fill the view every replan.
#pragma once

#include <limits>
#include <vector>

#include "core/job.hpp"
#include "core/power.hpp"
#include "core/quality.hpp"

namespace qes::policy {

/// One live assigned job as the planner sees it.
struct ViewJob {
  JobId id = 0;
  Time deadline = 0.0;
  Work demand = 0.0;     ///< full service demand w_j
  Work processed = 0.0;  ///< volume already executed
  double weight = 1.0;   ///< service-class weight (weighted planning)
  bool partial_ok = true;
};

/// One core's planning-relevant state.
struct CoreView {
  std::vector<ViewJob> jobs;  ///< live assigned jobs (any order on input)
  /// Effective hardware speed cap (EngineConfig::core_speed_cap(i) /
  /// RuntimeConfig::max_core_speed); infinity = power-bound only.
  Speed speed_cap = std::numeric_limits<double>::infinity();
};

struct WorldView {
  Time now = 0.0;
  Watts power_budget = 0.0;
  /// Not owned; must outlive the planning call.
  const PowerModel* power_model = nullptr;
  /// Not owned; required by weighted planning only.
  const QualityFunction* quality = nullptr;
  std::vector<CoreView> cores;

  /// Re-arms the view for a new replan, keeping per-core vector capacity
  /// so steady-state refills do not touch the heap.
  void reset(Time t, Watts budget, std::size_t core_count) {
    now = t;
    power_budget = budget;
    if (cores.size() != core_count) cores.resize(core_count);
    for (CoreView& c : cores) c.jobs.clear();
  }
};

}  // namespace qes::policy
