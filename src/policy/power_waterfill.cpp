#include "policy/power_waterfill.hpp"

#include <algorithm>
#include <numeric>

#include "core/assert.hpp"

namespace qes {

void waterfill_power_into(std::span<const Watts> requested, Watts budget,
                          WaterfillPowerScratch& scratch,
                          std::vector<Watts>& out) {
  QES_ASSERT(budget >= 0.0);
  const std::size_t m = requested.size();
  std::vector<Watts>& assigned = out;
  assigned.assign(m, 0.0);
  Watts remaining = budget;

  // The paper's iterative formulation: repeatedly raise every unsatisfied
  // core by the smallest outstanding request, or split the remainder
  // evenly when it no longer covers that raise.
  std::vector<Watts>& outstanding = scratch.outstanding;
  outstanding.assign(requested.begin(), requested.end());
  for (Watts& h : outstanding) QES_ASSERT(h >= 0.0);
  while (true) {
    std::size_t unsatisfied = 0;
    Watts h_min = 0.0;
    bool first = true;
    for (Watts h : outstanding) {
      if (h > kTimeEps) {
        ++unsatisfied;
        if (first || h < h_min) {
          h_min = h;
          first = false;
        }
      }
    }
    if (unsatisfied == 0 || remaining <= kTimeEps) break;
    if (h_min * static_cast<double>(unsatisfied) >= remaining) {
      const Watts share = remaining / static_cast<double>(unsatisfied);
      for (std::size_t i = 0; i < m; ++i) {
        if (outstanding[i] > kTimeEps) assigned[i] += share;
      }
      remaining = 0.0;
      break;
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (outstanding[i] > kTimeEps) {
        assigned[i] += h_min;
        outstanding[i] -= h_min;
        remaining -= h_min;
      }
    }
  }
}

std::vector<Watts> waterfill_power(std::span<const Watts> requested,
                                   Watts budget) {
  WaterfillPowerScratch scratch;
  std::vector<Watts> assigned;
  waterfill_power_into(requested, budget, scratch, assigned);
  return assigned;
}

std::vector<std::optional<Speed>> rectify_speeds_discrete(
    std::span<const Speed> continuous, Watts budget,
    const DiscreteSpeedSet& levels, const PowerModel& pm) {
  QES_ASSERT(!levels.empty());
  const std::size_t m = continuous.size();

  // Pool of slack: budget minus the power of the continuous assignment.
  Watts used = 0.0;
  for (Speed s : continuous) used += pm.dynamic_power(s);
  QES_ASSERT_MSG(used <= budget + 1e-6,
                 "continuous speeds must already fit the budget");
  Watts slack = budget - used;

  // Process cores from the lowest continuous power upward (§V-F).
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return continuous[a] < continuous[b];
                   });

  std::vector<std::optional<Speed>> out(m, std::nullopt);
  for (std::size_t i : order) {
    const Speed s = continuous[i];
    if (s <= kTimeEps) continue;  // idle core stays idle
    const Watts own = pm.dynamic_power(s);
    const std::optional<Speed> up = levels.snap_up(s);
    if (up && pm.dynamic_power(*up) - own <= slack + kTimeEps) {
      out[i] = *up;
      slack -= pm.dynamic_power(*up) - own;
      continue;
    }
    // Walk down to the largest affordable level (frees slack).
    const auto& lv = levels.levels();
    for (auto it = lv.rbegin(); it != lv.rend(); ++it) {
      if (*it <= s + kTimeEps &&
          pm.dynamic_power(*it) - own <= slack + kTimeEps) {
        out[i] = *it;
        slack -= pm.dynamic_power(*it) - own;
        break;
      }
    }
    if (!out[i]) slack += own;  // nothing affordable: the core idles
  }
  return out;
}

}  // namespace qes
