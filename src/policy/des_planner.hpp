// DesPlanner: the single, engine-agnostic DES planner kernel.
//
// The paper's multicore heuristic (§IV: C-RR job distribution,
// budget-free per-core YDS, water-filling power distribution,
// budget-bounded per-core Online-QE; §V-A No-DVFS / S-DVFS variants;
// §V-D rigid-job discard loop; §V-F discrete rectification) used to be
// implemented twice — once against sim::Engine and once against the live
// runtime state. It now lives here exactly once, planning against the
// engine-agnostic WorldView snapshot; the simulator policy, the qesd
// runtime, and the cluster lockstep are thin adapters that build a view,
// invoke one of the plan_* pipelines, and apply the PlanOutcome back to
// their own state (see docs/ARCHITECTURE.md).
//
// The planner owns reusable scratch buffers for the whole pipeline —
// snapshot handling AND the single-core sub-algorithms (YDS,
// Quality-OPT, Online-QE run through their *_into scratch variants) —
// so a steady-state replan on the paper's continuous path performs zero
// heap allocations (bench/replan_kernel and bench/sim_event_core gate
// this).
//
// Phase timings for every pipeline stage go to the unified histogram
// family `qes_replan_phase_ms{plane=...,phase=...}` — one family for all
// planes, distinguished by the `plane` label passed at construction.
#pragma once

#include <string>
#include <vector>

#include "core/flat_map.hpp"
#include "core/schedule.hpp"
#include "obs/phase_profiler.hpp"
#include "policy/power_waterfill.hpp"
#include "policy/world_view.hpp"
#include "sched/online_qe.hpp"

namespace qes::obs {
class Registry;
}  // namespace qes::obs

namespace qes::policy {

/// Unified replan-phase histogram family shared by every plane
/// (plane="sim" | "runtime" | "cluster").
inline constexpr const char kReplanPhaseMetric[] = "qes_replan_phase_ms";
inline constexpr const char kReplanPhaseHelp[] =
    "wall time per DES replan phase (ms)";

/// Pipeline variants. The defaults are the paper's execution model on
/// continuous C-DVFS — exactly what the runtime plane serves.
struct PlanOptions {
  /// Discrete speed levels (§V-F); nullptr = continuous scaling. Not
  /// owned; must outlive the planning call.
  const DiscreteSpeedSet* speed_levels = nullptr;
  /// Replace WF with static equal power sharing (ablation).
  bool static_power = false;
  /// Allocate per-core volumes by WEIGHTED quality (service classes);
  /// requires WorldView::quality. Implies baseline-aware planning.
  bool weighted = false;
  /// Skip Online-QE's energy stretch: run granted volumes flat-out.
  bool eager_execution = false;
  /// Baseline-aware planning (Quality-OPT + YDS instead of Online-QE):
  /// required when mid-queue jobs may carry prior volume, i.e. under the
  /// resume ablation or rebalancing.
  bool baseline_mode = false;
  /// Keep partially executed, passed-over jobs alive (ablation; the
  /// paper's model discards them — see CoreOutcome::passed_over).
  bool resume_passed_jobs = false;
};

/// Per-core planning result. Consumers must apply it in this order:
/// finalize `rigid_discards` front to back, then `passed_over` front to
/// back, then install `plan` (and `idle_power` where the engine models
/// idle draw) — that reproduces the legacy in-place sequence bitwise.
struct CoreOutcome {
  Schedule plan;
  Watts idle_power = 0.0;
  /// Rigid jobs the §V-D loop discarded, in discard order.
  std::vector<JobId> rigid_discards;
  /// Partially executed jobs the final plan passes over (fair share
  /// already met; the paper's model never resumes them). Empty when
  /// PlanOptions::resume_passed_jobs is set.
  std::vector<JobId> passed_over;
};

struct PlanOutcome {
  std::vector<CoreOutcome> cores;

  /// Clears per-core results, keeping capacity.
  void reset(std::size_t core_count) {
    if (cores.size() != core_count) cores.resize(core_count);
    for (CoreOutcome& c : cores) {
      c.plan.clear();
      c.idle_power = 0.0;
      c.rigid_discards.clear();
      c.passed_over.clear();
    }
  }
};

/// Budget-free per-core YDS result (DES step 2): the plan assuming
/// unlimited power, its instantaneous power request at `now`, and its
/// top speed. Also the node's load signal to the cluster budget broker.
struct BudgetFree {
  Schedule plan;
  Watts power_at_now = 0.0;
  Speed max_speed = 0.0;
};

class DesPlanner {
 public:
  /// `registry` may be nullptr (phase profiling disabled); `plane` tags
  /// the unified phase histogram family ("sim", "runtime", ...).
  explicit DesPlanner(obs::Registry* registry = nullptr,
                      const std::string& plane = "");

  DesPlanner(const DesPlanner&) = delete;
  DesPlanner& operator=(const DesPlanner&) = delete;

  /// The paper's full C-DVFS pipeline (steps 2-4 of §IV-D; step 1, job
  /// distribution, is the consumer's because it mutates assignment
  /// state): budget-free YDS, the all-fits fast path, WF (or static /
  /// eager-escalated) power distribution, and budget-bounded planning
  /// with the rigid-discard loop; discrete rectification when
  /// `opt.speed_levels` is set. Canonicalizes and mutates `view`.
  void plan_c_dvfs(WorldView& view, const PlanOptions& opt, PlanOutcome& out);

  /// §V-A No-DVFS: all cores pinned at the equal-share speed, busy or
  /// idle (idle_power = P(s0)); Quality-OPT volumes laid out FIFO.
  void plan_no_dvfs(WorldView& view, const PlanOptions& opt, PlanOutcome& out);

  /// §V-A S-DVFS: one chip-wide speed covering the hungriest core's
  /// request, clamped to the equal share H/m.
  void plan_s_dvfs(WorldView& view, const PlanOptions& opt, PlanOutcome& out);

  /// DES step 2 for one (canonicalized) core — exposed for the cluster
  /// power_request signal and tests.
  [[nodiscard]] BudgetFree budget_free(const WorldView& view,
                                       std::size_t core);

  /// Sum of budget-free power requests over all cores: the total dynamic
  /// power the node would draw right now were H unlimited.
  [[nodiscard]] Watts total_power_request(const WorldView& view);

  /// Sorts every core's job list to (deadline, id) order — arrival order
  /// for agreeable workloads. Called by every plan_* entry; idempotent.
  static void canonicalize(WorldView& view);

  /// The phase profiler backing this planner's plane — consumers wrap
  /// the phases they own (e.g. C-RR distribution) with it so all phases
  /// of one replan land in the same labeled family.
  [[nodiscard]] obs::PhaseProfiler& profiler() { return profiler_; }

 private:
  // Planned additional volume per job plus the executable timetable.
  struct CorePlan {
    Schedule plan;
    FlatVolumeMap planned;
  };

  void budget_free_core_into(const CoreView& core, Time now,
                             const PowerModel& pm, BudgetFree& out);
  void fixed_speed_plan_into(const CoreView& core, Time now, Speed speed,
                             bool baseline_mode, CorePlan& out);
  void budget_bounded_plan_into(const CoreView& core, Time now,
                                Speed max_speed, bool eager,
                                bool baseline_mode, CorePlan& out);
  void weighted_budget_bounded_plan_into(const CoreView& core, Time now,
                                         const QualityFunction& quality,
                                         Speed max_speed, bool eager,
                                         CorePlan& out);
  static void eager_timetable_into(const CoreView& core, Time now,
                                   const FlatVolumeMap& planned,
                                   Speed max_speed, Schedule& out);
  static void quantize_plan_into(const Schedule& plan, Time now,
                                 const DiscreteSpeedSet& levels, Speed cap,
                                 Schedule& out);

  /// §V-D: recomputes `make_plan` until no rigid job is left incomplete,
  /// erasing discarded jobs from `core` and recording them (and the
  /// passed-over drops) into `out`. `make_plan` returns a reference to a
  /// planner-owned scratch CorePlan, valid until the next call.
  template <typename MakePlan>
  void install_with_rigid_check(CoreView& core, const PlanOptions& opt,
                                MakePlan make_plan, CoreOutcome& out);

  obs::PhaseProfiler profiler_;
  // Reusable scratch (cleared, never shrunk) covering the full replan:
  // snapshot handling plus the single-core sub-algorithms via their
  // *_into variants; see the zero-allocation note in the file comment.
  std::vector<ReadyJob> ready_;
  std::vector<Work> baselines_;
  std::vector<double> weights_;
  std::vector<BudgetFree> free_plans_;
  std::vector<Watts> requests_;
  std::vector<Watts> budgets_;
  std::vector<Speed> speeds_;
  std::vector<Job> jobs_tmp_;
  std::vector<Job> jobs_tmp2_;
  AgreeableJobSet set_tmp_;
  AgreeableJobSet set_tmp2_;
  YdsScratch yds_scratch_;
  YdsResult yds_out_;
  QualityOptScratch qopt_scratch_;
  QualityOptResult qopt_out_;
  OnlineQeScratch oqe_scratch_;
  OnlineQeResult oqe_out_;
  WaterfillPowerScratch wfp_scratch_;
  CorePlan plan_tmp_;
  Schedule sched_tmp_;
};

}  // namespace qes::policy
