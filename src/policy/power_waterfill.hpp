// WF: Water-Filling power distribution across cores (paper §IV-C) and
// its discrete-speed rectification (paper §V-F).
//
// Given per-core requested powers h_i and a total budget H, WF assigns
// a_i = min(h_i, L) where the level L is chosen so the assignments sum to
// min(H, sum h_i): cores below the level get exactly what they asked for,
// the rest share the remainder equally. This is the max-min fair
// allocation and, by convexity of P(s), maximizes the total speed.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/power.hpp"
#include "core/time.hpp"

namespace qes {

/// Distributes `budget` watts over cores requesting `requested` watts.
/// Returns the per-core assignment; conserves min(budget, sum requested).
[[nodiscard]] std::vector<Watts> waterfill_power(
    std::span<const Watts> requested, Watts budget);

/// Reusable buffer for the scratch variant.
struct WaterfillPowerScratch {
  std::vector<Watts> outstanding;
};

/// Identical arithmetic to waterfill_power, writing the assignment into
/// `out` and drawing temporaries from `scratch` (zero-allocation steady
/// state).
void waterfill_power_into(std::span<const Watts> requested, Watts budget,
                          WaterfillPowerScratch& scratch,
                          std::vector<Watts>& out);

/// §V-F discrete rectification. `continuous` holds the per-core speeds
/// implied by a WF assignment whose powers sum to <= budget. Starting
/// from the core with the lowest assigned power, each speed is snapped
/// UP to the nearest discrete level if the pooled budget still allows,
/// otherwise down to the next lower level (nullopt => the core idles).
/// The returned speeds always satisfy sum_i P(speed_i) <= budget.
[[nodiscard]] std::vector<std::optional<Speed>> rectify_speeds_discrete(
    std::span<const Speed> continuous, Watts budget,
    const DiscreteSpeedSet& levels, const PowerModel& pm);

}  // namespace qes
