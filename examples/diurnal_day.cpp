// Energy proportionality over a traffic day.
//
//   $ ./examples/diurnal_day [base_rate] [amplitude]
//
// Interactive services see diurnal load; this example compresses a "day"
// into 60 simulated seconds of sinusoidal traffic and shows, window by
// window, how DES on core-level DVFS makes power track load while a
// No-DVFS deployment burns its full budget around the clock — the
// operational argument for the paper's architecture.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "multicore/des_scheduler.hpp"
#include "report/table.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace qes;

  DiurnalConfig day;
  day.base_rate = argc > 1 ? std::atof(argv[1]) : 120.0;
  day.amplitude = argc > 2 ? std::atof(argv[2]) : 0.6;
  day.period_ms = 60'000.0;   // one compressed day
  day.horizon_ms = 60'000.0;

  std::printf("diurnal web-search traffic: %.0f req/s mean, swing "
              "%.0f%%..%.0f%%\n\n",
              day.base_rate, 100.0 * (1.0 - day.amplitude),
              100.0 * (1.0 + day.amplitude));

  auto jobs = generate_diurnal_jobs(day);
  EngineConfig cfg;
  cfg.record_execution = true;
  Engine engine(cfg, jobs, make_des_policy());
  const RunResult run = engine.run();

  // Per-window accounting from the executed schedules and job records.
  const int windows = 12;  // "2-hour" bins
  const Time win = day.period_ms / windows;
  std::vector<double> energy(windows, 0.0);
  for (const Schedule& sched : run.executed) {
    for (const Segment& s : sched.segments()) {
      for (int w = 0; w < windows; ++w) {
        const Time lo = w * win, hi = (w + 1) * win;
        const Time overlap =
            std::max(0.0, std::min(s.t1, hi) - std::max(s.t0, lo));
        energy[static_cast<std::size_t>(w)] +=
            cfg.power_model.dynamic_energy(s.speed, overlap);
      }
    }
  }
  std::vector<double> quality(windows, 0.0), max_quality(windows, 0.0);
  std::vector<int> count(windows, 0);
  for (const JobState& st : run.jobs) {
    const int w = std::min(windows - 1,
                           static_cast<int>(st.job.release / win));
    quality[static_cast<std::size_t>(w)] += st.quality;
    max_quality[static_cast<std::size_t>(w)] +=
        cfg.quality(st.job.demand);
    ++count[static_cast<std::size_t>(w)];
  }

  Table t({"hour", "rate_req/s", "quality", "avg_power_W(DES)",
           "No-DVFS_W"});
  for (int w = 0; w < windows; ++w) {
    const Time mid = (w + 0.5) * win;
    t.add_row({std::to_string(w * 2), fmt(diurnal_rate(day, mid), 0),
               fmt(max_quality[static_cast<std::size_t>(w)] > 0
                       ? quality[static_cast<std::size_t>(w)] /
                             max_quality[static_cast<std::size_t>(w)]
                       : 1.0,
                   4),
               fmt(energy[static_cast<std::size_t>(w)] / (win / 1000.0), 1),
               fmt(cfg.power_budget, 0)});
  }
  t.print(std::cout);
  const double total_kj = run.stats.dynamic_energy / 1000.0;
  const double flat_kj =
      cfg.power_budget * run.stats.end_time / 1000.0 / 1000.0;
  std::printf("\nday total: %.1f kJ under DES vs %.1f kJ for No-DVFS "
              "(%.0f%% saved), quality %.4f\n",
              total_kj, flat_kj, 100.0 * (1.0 - total_kj / flat_kj),
              run.stats.normalized_quality);
  return 0;
}
