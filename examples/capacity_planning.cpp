// Capacity planning: how much traffic can the server sustain at a target
// quality under each scheduler?
//
//   $ ./examples/capacity_planning [target_quality] [sim_seconds]
//
// This reproduces the §V-E throughput comparison as a planning tool: for
// a service-level objective like "normalized quality >= 0.9", it sweeps
// the arrival rate for DES and the three baselines and reports the
// maximum sustainable load, i.e. how many fewer machines you need when
// the scheduler is smarter.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "multicore/baseline_scheduler.hpp"
#include "multicore/des_scheduler.hpp"
#include "report/table.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace qes;

  const double target = argc > 1 ? std::atof(argv[1]) : 0.9;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 120.0;

  WorkloadConfig wl;
  wl.horizon_ms = seconds * 1000.0;
  std::vector<double> rates;
  for (double r = 80.0; r <= 260.0; r += 10.0) rates.push_back(r);

  std::printf("target: normalized quality >= %.2f (16 cores, 320 W)\n\n",
              target);

  struct Candidate {
    std::string name;
    EngineConfig cfg;
    PolicyFactory factory;
  };
  std::vector<Candidate> candidates;
  candidates.push_back(
      {"DES", EngineConfig{}, [] { return make_des_policy(); }});
  for (BaselineOrder order :
       {BaselineOrder::FCFS, BaselineOrder::LJF, BaselineOrder::SJF}) {
    candidates.push_back({to_string(order),
                          baseline_engine_config(EngineConfig{}),
                          [order] {
                            return make_baseline_policy({.order = order});
                          }});
  }

  Table t({"scheduler", "max req/s", "machines for 10k req/s"});
  double des_tp = 0.0;
  for (const Candidate& c : candidates) {
    const auto sweep = sweep_rates(c.cfg, wl, rates, c.factory, 2);
    const double tp = throughput_at_quality(sweep, target);
    if (des_tp == 0.0) des_tp = tp;
    t.add_row({c.name, fmt(tp, 1),
               tp > 0.0 ? fmt(10'000.0 / tp, 1) : "unbounded"});
  }
  t.print(std::cout);
  std::printf("\nA smarter scheduler is capacity you do not have to buy.\n");
  return 0;
}
