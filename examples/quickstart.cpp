// Quickstart: simulate a 16-core web-search server under the DES
// scheduler and print the quality/energy summary.
//
//   $ ./examples/quickstart [arrival_rate] [sim_seconds]
//
// This is the smallest end-to-end use of the library: build a workload,
// pick a scheduling policy, run the engine, read the stats.
#include <cstdio>
#include <cstdlib>

#include "multicore/des_scheduler.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace qes;

  const double rate = argc > 1 ? std::atof(argv[1]) : 150.0;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 60.0;

  // 1. The workload: Poisson arrivals, bounded-Pareto demands, 150 ms
  //    deadlines (the paper's web-search model).
  WorkloadConfig workload;
  workload.arrival_rate = rate;
  workload.horizon_ms = seconds * 1000.0;
  std::vector<Job> jobs = generate_websearch_jobs(workload);

  // 2. The server: 16 cores with core-level DVFS, a 320 W dynamic power
  //    budget, P = 5 s^2 per core, quality function q(x) with c = 0.003.
  EngineConfig server;  // paper §V-B defaults

  // 3. The scheduler: DES = C-RR + WF + Online-QE.
  Engine engine(server, std::move(jobs), make_des_policy());
  RunResult result = engine.run();

  const RunStats& s = result.stats;
  std::printf("web-search server, %d cores, %.0f W budget\n", server.cores,
              server.power_budget);
  std::printf("arrival rate        : %.0f req/s for %.0f s\n", rate, seconds);
  std::printf("requests            : %zu (%zu satisfied, %zu partial, %zu "
              "unserved)\n",
              s.jobs_total, s.jobs_satisfied, s.jobs_partial, s.jobs_zero);
  std::printf("normalized quality  : %.4f\n", s.normalized_quality);
  std::printf("dynamic energy      : %.1f J (budget ceiling %.1f J)\n",
              s.dynamic_energy, server.power_budget * s.end_time / 1000.0);
  std::printf("peak power          : %.1f W (budget %.0f W)\n", s.peak_power,
              server.power_budget);
  std::printf("scheduler replans   : %zu\n", s.replans);
  return 0;
}
