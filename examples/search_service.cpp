// End-to-end best-effort web search: build an index, profile its
// quality(work) curve, and schedule real query traffic with DES.
//
//   $ ./examples/search_service [arrival_rate] [sim_seconds]
//
// This is the full pipeline the paper's evaluation abstracts: the
// concave quality function and the service demands are MEASURED from an
// actual early-terminating search engine (src/search) instead of
// assumed, then fed to the multicore scheduler.
#include <cstdio>
#include <cstdlib>

#include "multicore/baseline_scheduler.hpp"
#include "multicore/des_scheduler.hpp"
#include "search/profile.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace qes;

  const double rate = argc > 1 ? std::atof(argv[1]) : 180.0;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 30.0;

  // 1. The search engine substrate.
  search::CorpusConfig corpus_cfg;
  corpus_cfg.num_documents = 8'000;
  corpus_cfg.vocabulary = 3'000;
  std::printf("building corpus (%u docs, %u terms) and impact-ordered "
              "index...\n",
              corpus_cfg.num_documents, corpus_cfg.vocabulary);
  const search::Corpus corpus(corpus_cfg);
  const search::InvertedIndex index(corpus);
  std::printf("index: %zu postings\n", index.total_postings());

  // 2. Measure the quality(work) curve from real early-terminated
  //    queries and fit the paper's Eq. (1) family to it.
  const search::QualityProfile profile =
      search::profile_quality(index, corpus);
  std::printf("profiled quality curve: concave=%s, fitted c=%.5f "
              "(rmse %.3f)\n",
              profile.measured_curve_concave() ? "yes" : "NO",
              profile.fitted_c, profile.fit_rmse);
  std::printf("query demand (units): min %.0f / mean %.0f / max %.0f\n",
              profile.demand_min, profile.demand_mean, profile.demand_max);

  // 3. Real query traffic becomes a scheduler workload.
  auto jobs = search::search_workload(index, corpus, profile, rate,
                                      seconds * 1000.0);
  std::printf("workload: %zu queries at %.0f req/s\n\n", jobs.size(), rate);

  // 4. Schedule it: DES vs FCFS, quality function = the fitted curve.
  EngineConfig server;
  server.quality = profile.fitted_function();
  {
    Engine engine(server, jobs, make_des_policy());
    const RunStats s = engine.run().stats;
    std::printf("DES   : quality %.4f, energy %.0f J, %zu/%zu satisfied\n",
                s.normalized_quality, s.dynamic_energy, s.jobs_satisfied,
                s.jobs_total);
  }
  {
    EngineConfig base_cfg = baseline_engine_config(server);
    Engine engine(base_cfg, jobs, make_baseline_policy());
    const RunStats s = engine.run().stats;
    std::printf("FCFS  : quality %.4f, energy %.0f J, %zu/%zu satisfied\n",
                s.normalized_quality, s.dynamic_energy, s.jobs_satisfied,
                s.jobs_total);
  }
  std::printf("\nThe scheduler's quality gains are real search results "
              "returned before the 150 ms deadline.\n");
  return 0;
}
