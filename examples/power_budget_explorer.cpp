// Power-budget explorer: the quality/energy frontier of a provisioning
// decision.
//
//   $ ./examples/power_budget_explorer [arrival_rate] [sim_seconds]
//
// For a fixed traffic level, sweeps the rack power budget and reports
// quality, energy, and energy per unit of quality — the curve an
// operator reads to pick the cheapest budget meeting their SLO (§V-F,
// Fig. 8, as a decision tool).
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "multicore/des_scheduler.hpp"
#include "report/table.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace qes;

  const double rate = argc > 1 ? std::atof(argv[1]) : 200.0;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 120.0;

  WorkloadConfig wl;
  wl.arrival_rate = rate;
  wl.horizon_ms = seconds * 1000.0;

  std::printf("arrival rate %.0f req/s on 16 cores; sweeping the power "
              "budget\n\n", rate);

  Table t({"budget_W", "quality", "dyn_energy_J", "avg_power_W",
           "J per quality-point"});
  double prev_q = 0.0;
  double knee = 0.0;
  for (double H : {80.0, 120.0, 160.0, 240.0, 320.0, 480.0, 640.0}) {
    EngineConfig cfg;
    cfg.power_budget = H;
    const RunStats s =
        run_averaged(cfg, wl, [] { return make_des_policy(); }, 2);
    const double avg_power = s.dynamic_energy / (s.end_time / 1000.0);
    t.add_row({fmt(H, 0), fmt(s.normalized_quality, 4),
               fmt_sci(s.dynamic_energy), fmt(avg_power, 1),
               fmt(s.dynamic_energy / std::max(s.total_quality, 1e-9), 3)});
    if (knee == 0.0 && s.normalized_quality - prev_q < 0.005 && prev_q > 0.0) {
      knee = H;
    }
    prev_q = s.normalized_quality;
  }
  t.print(std::cout);
  if (knee > 0.0) {
    std::printf("\ndiminishing returns set in around H = %.0f W: beyond it, "
                "extra budget buys <0.5%% quality.\n", knee);
  } else {
    std::printf("\nquality still climbing at 640 W: this load is "
                "power-starved across the whole sweep.\n");
  }
  return 0;
}
