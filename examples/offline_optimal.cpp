// Single-core offline optimal walkthrough: QE-OPT on a hand-made burst.
//
//   $ ./examples/offline_optimal
//
// Shows the two-step structure of the paper's §III algorithm on a small
// job set you can verify by hand: Quality-OPT picks the volumes (who gets
// how much work under the capacity crunch), Energy-OPT (YDS) picks the
// speeds (how slowly each granted volume can run). Also demonstrates the
// lexicographic <quality, energy> comparison against naive alternatives.
#include <cstdio>
#include <iostream>

#include "report/table.hpp"
#include "sched/qe_opt.hpp"
#include "sched/quality_opt.hpp"
#include "sim/metrics.hpp"

int main() {
  using namespace qes;

  // A burst of three queries at t=0 with staggered deadlines, then a
  // straggler. The core's power budget supports at most 2 GHz.
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 100.0, .demand = 180.0},
      {.id = 2, .release = 0.0, .deadline = 120.0, .demand = 300.0},
      {.id = 3, .release = 0.0, .deadline = 150.0, .demand = 90.0},
      {.id = 4, .release = 200.0, .deadline = 350.0, .demand = 120.0},
  };
  const AgreeableJobSet set(jobs);
  const Speed s_max = 2.0;  // 20 W per core under P = 5 s^2
  const PowerModel pm = default_power_model();
  const auto f = QualityFunction::exponential(0.003);

  std::printf("QE-OPT on a single 2 GHz-budget core\n\n");

  const QeOptResult qe = qe_opt_schedule(set, s_max);

  std::printf("step 1 (Quality-OPT): granted volumes\n");
  Table vols({"job", "window_ms", "demand", "granted", "status"});
  for (std::size_t k = 0; k < set.size(); ++k) {
    const bool sat = qe.volumes[k] + 1e-6 >= set[k].demand;
    vols.add_row({std::to_string(set[k].id), fmt(set[k].window(), 0),
                  fmt(set[k].demand, 0), fmt(qe.volumes[k], 1),
                  sat ? "satisfied" : "deprived (levelled)"});
  }
  vols.print(std::cout);

  std::printf("\nstep 2 (Energy-OPT): the executable schedule\n");
  Table sched({"t0_ms", "t1_ms", "job", "speed_GHz", "power_W"});
  for (const Segment& seg : qe.schedule.segments()) {
    sched.add_row({fmt(seg.t0, 1), fmt(seg.t1, 1), std::to_string(seg.job),
                   fmt(seg.speed, 3), fmt(pm.dynamic_power(seg.speed), 2)});
  }
  sched.print(std::cout);

  const double q_opt = total_quality(qe.volumes, f);
  const Joules e_opt = qe.schedule.dynamic_energy(pm);
  std::printf("\n<quality, energy> = <%.4f, %.3f J>\n", q_opt, e_opt);

  // Naive alternative 1: always run flat out at 2 GHz (Quality-OPT's own
  // timetable). Same quality, more energy.
  const auto flat = quality_opt_schedule(set, s_max);
  const QualityEnergy a{q_opt, e_opt};
  const QualityEnergy b{total_quality(flat.volumes, f),
                        flat.schedule.dynamic_energy(pm)};
  std::printf("flat 2 GHz        = <%.4f, %.3f J>  -> QE-OPT better? %s\n",
              b.quality, b.energy, lex_better(a, b) ? "yes" : "tied");

  // Naive alternative 2: run slowly at 1 GHz (less energy per unit, but
  // sacrifices quality => lexicographically worse).
  const auto slow = quality_opt_schedule(set, 1.0);
  const QualityEnergy c{total_quality(slow.volumes, f),
                        slow.schedule.dynamic_energy(pm)};
  std::printf("flat 1 GHz        = <%.4f, %.3f J>  -> QE-OPT better? %s\n",
              c.quality, c.energy, lex_better(a, c) ? "yes" : "no");
  return 0;
}
