#!/usr/bin/env bash
# Builds and runs the test suite under BOTH ThreadSanitizer and
# Address+UBSanitizer in one invocation (the qesd runtime and the obs
# layer are concurrent; sanitizer-cleanliness is an acceptance
# criterion, not a nice-to-have).
#
# The obs label covers the whole scrape plane: the HTTP exporter smoke
# tests (live /metrics scrapes against the runtime server and the
# cluster), the multi-producer TraceRing stress, the exposition linter,
# spans, and the qesd/qes_cluster driver smokes that bind ephemeral
# scrape ports — so `-L obs` under TSan exercises the exporter thread
# against concurrent serving traffic.
#
# The net label covers the wire plane: frame codec, the epoll ingress
# (binary + HTTP adapters, shed reconciliation against the runtime
# server), the loadgen end-to-end loopback run, and the qesd/qes_loadgen
# process-level smoke — `-L net` under TSan races the ingress workers,
# the trigger thread's completion forwarding, and the generator.
#
# The scenario label covers the declarative scenario matrix
# (docs/SCENARIOS.md): the JSON spec parser's malformed-input suite, the
# curated small-N sub-matrix in scenario_matrix_test (every arrival
# regime, substrate, and chaos operation with the conservation / power-
# cap / QE-OPT invariants as hard assertions), and the qes_scenarios
# smoke cells — so `-L scenario` under ASan+UBSan sweeps the calendar-
# queue event core and the chaos redistribution path for memory errors.
#
#   $ scripts/ci_sanitize.sh                     # both sanitizers, all tests
#   $ scripts/ci_sanitize.sh -L obs              # both, obs+runtime suite only
#   $ scripts/ci_sanitize.sh -L cluster          # both, multi-node cluster suite
#   $ scripts/ci_sanitize.sh -L policy           # both, DES planner kernel suite
#   $ scripts/ci_sanitize.sh -L net              # both, wire-plane suite
#   $ scripts/ci_sanitize.sh -L scenario         # both, scenario-matrix suite
#   $ scripts/ci_sanitize.sh thread              # just TSan
#   $ scripts/ci_sanitize.sh address -R runtime  # one sanitizer + ctest args
set -euo pipefail
cd "$(dirname "$0")/.."

# The planner kernel headers are the contract every execution plane
# builds against (sim adapter, qesd runtime, cluster lockstep), so each
# must compile as its own translation unit — no hidden include-order
# dependencies.
echo "=== policy header self-containment ==="
tu="$(mktemp --suffix=.cpp)"
trap 'rm -f "${tu}"' EXIT
for hpp in src/policy/*.hpp; do
  echo "  ${hpp}"
  printf '#include "policy/%s"\n' "$(basename "${hpp}")" > "${tu}"
  "${CXX:-c++}" -std=c++20 -fsyntax-only -Isrc "${tu}"
done

# A leading `thread` or `address` selects a single sanitizer; any other
# first argument (or none) runs both, and every remaining argument is
# forwarded to ctest verbatim.
case "${1:-}" in
  thread|address) sanitizers=("$1"); shift ;;
  *) sanitizers=(thread address) ;;
esac

for san in "${sanitizers[@]}"; do
  build="build-${san}san"
  echo "=== ${san} sanitizer -> ${build} ==="
  cmake -B "${build}" -S . -DQES_SANITIZE="${san}" \
    -DQES_BUILD_BENCH=OFF -DQES_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "${build}" -j "$(nproc)"
  (cd "${build}" && ctest --output-on-failure -j "$(nproc)" "$@")
done
echo "=== sanitizers clean ==="
