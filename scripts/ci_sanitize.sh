#!/usr/bin/env bash
# Builds and runs the test suite under ThreadSanitizer and
# Address+UBSanitizer (the qesd runtime is concurrent; TSan-cleanliness
# is an acceptance criterion, not a nice-to-have).
#
#   $ scripts/ci_sanitize.sh              # both sanitizers
#   $ scripts/ci_sanitize.sh thread       # just TSan
#   $ scripts/ci_sanitize.sh address -R runtime   # extra args go to ctest
set -euo pipefail
cd "$(dirname "$0")/.."

sanitizers=("${1:-}")
if [[ -z "${sanitizers[0]}" ]]; then
  sanitizers=(thread address)
else
  shift
fi

for san in "${sanitizers[@]}"; do
  build="build-${san}san"
  echo "=== ${san} sanitizer -> ${build} ==="
  cmake -B "${build}" -S . -DQES_SANITIZE="${san}" \
    -DQES_BUILD_BENCH=OFF -DQES_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "${build}" -j "$(nproc)"
  (cd "${build}" && ctest --output-on-failure -j "$(nproc)" "$@")
done
echo "=== sanitizers clean ==="
