#!/usr/bin/env bash
# Regenerates every paper figure/table as CSV under results/.
#
#   scripts/run_figures.sh [SIM_SECONDS] [SEEDS]
#
# Defaults: 600 simulated seconds, 3 seeds (the paper used 1800 s).
# Plot with gnuplot: scripts/plots/*.gp read the CSVs.
set -euo pipefail
cd "$(dirname "$0")/.."

SECS="${1:-600}"
SEEDS="${2:-3}"
BUILD="${BUILD_DIR:-build}"
OUT=results
mkdir -p "$OUT"

if [ ! -d "$BUILD/bench" ]; then
  echo "build first: cmake -B $BUILD -G Ninja && cmake --build $BUILD" >&2
  exit 1
fi

for b in "$BUILD"/bench/*; do
  name="$(basename "$b")"
  case "$name" in
    micro_algorithms) continue ;;  # google-benchmark output, not a figure
  esac
  echo "== $name (QES_SIM_SECONDS=$SECS QES_SEEDS=$SEEDS)"
  QES_CSV=1 QES_SIM_SECONDS="$SECS" QES_SEEDS="$SEEDS" "$b" \
    > "$OUT/$name.raw"
  # Keep only the CSV block: lines whose comma-count equals the dominant
  # count (prose and notes have fewer fields).
  awk -F',' 'NF>2 {c[NF]++} END {m=0; for (k in c) if (c[k]>m) {m=c[k]; best=k}; print best}' \
    "$OUT/$name.raw" > "$OUT/.nf"
  NF_BEST=$(cat "$OUT/.nf")
  if [ -n "$NF_BEST" ] && [ "$NF_BEST" != "" ]; then
    awk -F',' -v want="$NF_BEST" 'NF==want' "$OUT/$name.raw" > "$OUT/$name.csv"
  else
    cp "$OUT/$name.raw" "$OUT/$name.csv"
  fi
  rm -f "$OUT/.nf"
done
echo "CSVs in $OUT/; see scripts/plots/*.gp"
