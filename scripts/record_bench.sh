#!/usr/bin/env bash
# Records the per-PR performance snapshot (ROADMAP item 2): runs the
# replan-kernel latency bench, the cluster weak-scaling bench, the
# wire-plane loopback bench, and the 10M-job diurnal scenario cell, and
# distills their headline numbers into a single BENCH_<tag>.json at the
# repo root. No jq — the benches print fixed-format tables (awk-parsed)
# or a RESULT_JSON line (lifted verbatim).
#
#   $ scripts/record_bench.sh            # writes BENCH_pr7.json
#   $ scripts/record_bench.sh pr8        # writes BENCH_pr8.json
#
# Env: QES_SIM_SECONDS / QES_SEEDS bound the cluster bench's replay
# horizon (defaults below keep the whole script a few minutes on one
# CPU); QES_NET_REQS / QES_NET_RATE tune the wire bench;
# QES_SCENARIO_WALL_BUDGET_S gates the 10M cell's wall clock (the
# simulation-scale acceptance bar; 0 disables the gate).
set -euo pipefail
cd "$(dirname "$0")/.."

TAG="${1:-pr7}"
BENCH_DIR="${BENCH_DIR:-build/bench}"
TOOLS_DIR="${TOOLS_DIR:-build/tools}"
OUT="BENCH_${TAG}.json"
SCENARIO_WALL_BUDGET_S="${QES_SCENARIO_WALL_BUDGET_S:-30}"

for b in replan_kernel cluster_scaling net_ingress; do
  if [[ ! -x "${BENCH_DIR}/${b}" ]]; then
    echo "record_bench: ${BENCH_DIR}/${b} not built (cmake --build build)" >&2
    exit 1
  fi
done
if [[ ! -x "${TOOLS_DIR}/qes_scenarios" ]]; then
  echo "record_bench: ${TOOLS_DIR}/qes_scenarios not built" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

echo "=== replan_kernel ==="
"${BENCH_DIR}/replan_kernel" | tee "${workdir}/replan.out"
echo
echo "=== cluster_scaling (QES_SIM_SECONDS=${QES_SIM_SECONDS:-10}," \
  "QES_SEEDS=${QES_SEEDS:-1}) ==="
QES_SIM_SECONDS="${QES_SIM_SECONDS:-10}" QES_SEEDS="${QES_SEEDS:-1}" \
  "${BENCH_DIR}/cluster_scaling" | tee "${workdir}/cluster.out"
echo
echo "=== net_ingress ==="
"${BENCH_DIR}/net_ingress" | tee "${workdir}/net.out"
echo
echo "=== scenario: diurnal_10m (wall budget ${SCENARIO_WALL_BUDGET_S}s) ==="
"${TOOLS_DIR}/qes_scenarios" --spec scenarios/diurnal_10m.json \
  | tee "${workdir}/scenario.out"
echo

# replan_kernel table: `ready_jobs mean_us best_us refill_allocs ...`
# rows keyed by the load level in column 1.
replan_mean() {
  awk -v jobs="$1" '$1 == jobs { print $2; exit }' "${workdir}/replan.out"
}
replan_8="$(replan_mean 8)"
replan_32="$(replan_mean 32)"
replan_128="$(replan_mean 128)"

# cluster_scaling table: `nodes dispatch norm_quality ...`; take the
# crr row at 1 and 8 nodes as the scaling anchors.
cluster_q() {
  awk -v n="$1" '$1 == n && $2 == "crr" { print $3; exit }' \
    "${workdir}/cluster.out"
}
cluster_q1="$(cluster_q 1)"
cluster_q8="$(cluster_q 8)"

# net_ingress prints its whole result as one RESULT_JSON line.
net_json="$(sed -n 's/^RESULT_JSON //p' "${workdir}/net.out" | tail -n 1)"

# qes_scenarios prints the cell's row as one RESULT_JSON line; the
# wall-clock gate enforces the simulation-scale acceptance bar (10M
# jobs in <= the budget, single-threaded).
scenario_json="$(sed -n 's/^RESULT_JSON //p' "${workdir}/scenario.out" \
  | tail -n 1)"
scenario_wall="$(printf '%s\n' "${scenario_json}" \
  | sed -n 's/.*"run_wall_s": \([0-9.]*\).*/\1/p')"

for v in replan_8 replan_32 replan_128 cluster_q1 cluster_q8 net_json \
         scenario_json scenario_wall; do
  if [[ -z "${!v}" ]]; then
    echo "record_bench: failed to parse ${v} from bench output" >&2
    exit 1
  fi
done

if [[ "${SCENARIO_WALL_BUDGET_S}" != "0" ]] &&
   awk -v w="${scenario_wall}" -v b="${SCENARIO_WALL_BUDGET_S}" \
       'BEGIN { exit !(w > b) }'; then
  echo "record_bench: diurnal_10m took ${scenario_wall}s" \
    "(budget ${SCENARIO_WALL_BUDGET_S}s)" >&2
  exit 1
fi

cat > "${OUT}" <<EOF
{
  "tag": "${TAG}",
  "recorded_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "host": {
    "nproc": $(nproc),
    "kernel": "$(uname -r)"
  },
  "replan_kernel": {
    "mean_us_at_8_jobs": ${replan_8},
    "mean_us_at_32_jobs": ${replan_32},
    "mean_us_at_128_jobs": ${replan_128}
  },
  "cluster_scaling": {
    "sim_seconds": ${QES_SIM_SECONDS:-10},
    "norm_quality_crr_1_node": ${cluster_q1},
    "norm_quality_crr_8_nodes": ${cluster_q8}
  },
  "net_ingress": ${net_json},
  "scenario": {
    "wall_budget_s": ${SCENARIO_WALL_BUDGET_S},
    "diurnal_10m": ${scenario_json}
  }
}
EOF
echo "record_bench: wrote ${OUT}"
