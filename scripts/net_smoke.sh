#!/usr/bin/env bash
# Loopback end-to-end smoke for the wire plane: start qesd with an
# ephemeral --listen-port and zero in-process producers, drive it with
# qes_loadgen, and reconcile the generator's view against the server's —
# every SUBMIT must come back as exactly one REPLY (lost == 0), and the
# replies the generator classified as admitted must equal the jobs the
# runtime finalized (replies - shed == jobs_total).
#
#   $ scripts/net_smoke.sh build/tools/qesd build/tools/qes_loadgen
#
# Env knobs: NET_SMOKE_RATE (req/s, default 2000), NET_SMOKE_SECONDS
# (send window, default 2).
set -euo pipefail

QESD="${1:?usage: net_smoke.sh <qesd> <qes_loadgen>}"
LOADGEN="${2:?usage: net_smoke.sh <qesd> <qes_loadgen>}"
RATE="${NET_SMOKE_RATE:-2000}"
SECONDS_SEND="${NET_SMOKE_SECONDS:-2}"

workdir="$(mktemp -d)"
qesd_pid=""
cleanup() {
  [[ -n "${qesd_pid}" ]] && kill "${qesd_pid}" 2>/dev/null || true
  rm -rf "${workdir}"
}
trap cleanup EXIT

# The server run is longer than the send window so the drain starts only
# after every scheduled request has been submitted.
"${QESD}" --duration-s $((SECONDS_SEND + 3)) --time-scale 1 \
  --producers 0 --listen-port 0 --arrival-rate 100 \
  --cores 8 --budget 160 --metrics-interval-ms 500 \
  > "${workdir}/qesd.out" 2> "${workdir}/qesd.err" &
qesd_pid=$!

# qesd prints `listen {"port": N}` once the ingress is mounted.
port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^listen {"port": \([0-9]*\)}$/\1/p' "${workdir}/qesd.out")"
  [[ -n "${port}" ]] && break
  if ! kill -0 "${qesd_pid}" 2>/dev/null; then
    echo "net_smoke: qesd exited before binding" >&2
    cat "${workdir}/qesd.err" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "${port}" ]]; then
  echo "net_smoke: qesd never printed its listen port" >&2
  exit 1
fi

"${LOADGEN}" --port "${port}" --rate "${RATE}" \
  --duration-s "${SECONDS_SEND}" --connections 4 --seed 7 \
  > "${workdir}/loadgen.out"
cat "${workdir}/loadgen.out"

wait "${qesd_pid}"
qesd_pid=""
cat "${workdir}/qesd.out"

json_field() { # file key -> integer value
  sed -n "s/.*\"$2\": \([0-9]*\).*/\1/p" "$1" | head -n 1
}
submitted="$(json_field "${workdir}/loadgen.out" submitted)"
replies="$(json_field "${workdir}/loadgen.out" replies)"
shed="$(json_field "${workdir}/loadgen.out" shed)"
lost="$(json_field "${workdir}/loadgen.out" lost)"
jobs_total="$(sed -n 's/^final .*"jobs_total": \([0-9]*\).*/\1/p' \
  "${workdir}/qesd.out")"

echo "net_smoke: submitted=${submitted} replies=${replies} shed=${shed}" \
  "lost=${lost} jobs_total=${jobs_total}"
if [[ "${lost}" != 0 ]]; then
  echo "net_smoke: FAILED - ${lost} requests never got a reply" >&2
  exit 1
fi
if [[ "${replies}" != "${submitted}" ]]; then
  echo "net_smoke: FAILED - replies != submitted" >&2
  exit 1
fi
if [[ "$((replies - shed))" != "${jobs_total}" ]]; then
  echo "net_smoke: FAILED - admitted replies != server jobs_total" >&2
  exit 1
fi
echo "net_smoke: OK"
