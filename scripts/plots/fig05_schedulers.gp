# gnuplot script for Figure 5 (DES vs FCFS/LJF/SJF).
#   gnuplot -p scripts/plots/fig05_schedulers.gp
set datafile separator ','
file = 'results/fig05_schedulers_static.csv'
set key autotitle columnhead left bottom
set xlabel 'Arrival rate (req/s)'

set terminal pngcairo size 1100,450
set output 'results/fig05.png'
set multiplot layout 1,2
set ylabel 'Normalized quality'
plot for [c=2:5] file using 1:c with linespoints
set ylabel 'Dynamic energy (J)'
plot for [c=6:9] file using 1:c with linespoints
unset multiplot
