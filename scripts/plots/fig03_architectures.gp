# gnuplot script for Figure 3 (quality & energy vs arrival rate per
# architecture). Run scripts/run_figures.sh first.
#   gnuplot -p scripts/plots/fig03_architectures.gp
set datafile separator ','
file = 'results/fig03_architectures.csv'
set key autotitle columnhead left bottom
set xlabel 'Arrival rate (req/s)'

set terminal pngcairo size 1100,450
set output 'results/fig03.png'
set multiplot layout 1,2
set ylabel 'Normalized quality'
plot file using 1:2 with linespoints, \
     file using 1:3 with linespoints, \
     file using 1:4 with linespoints
set ylabel 'Dynamic energy (J)'
plot file using 1:5 with linespoints, \
     file using 1:6 with linespoints, \
     file using 1:7 with linespoints
unset multiplot
