# gnuplot script for Figure 10 (continuous vs discrete speed scaling).
#   gnuplot -p scripts/plots/fig10_discrete.gp
set datafile separator ','
file = 'results/fig10_discrete_speed.csv'
set key autotitle columnhead left bottom
set xlabel 'Arrival rate (req/s)'

set terminal pngcairo size 1100,450
set output 'results/fig10.png'
set multiplot layout 1,2
set ylabel 'Normalized quality'
plot file using 1:2 with linespoints, \
     file using 1:3 with linespoints
set ylabel 'Dynamic energy (J)'
plot file using 1:5 with linespoints, \
     file using 1:6 with linespoints
unset multiplot
